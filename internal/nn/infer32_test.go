package nn

import (
	"math"
	"testing"

	"deepsketch/internal/datagen"
)

// f32 kernels accumulate in float32, so they drift from the f64 reference
// by rounding noise that grows with the inner dimension; relative bounds of
// ~1e-5 are comfortable for the shapes below while still catching any real
// kernel bug (tiling, remainder, offset errors produce O(1) deviations).
const f32RelTol = 2e-5

func relDiff(got float32, want float64) float64 {
	d := math.Abs(float64(got) - want)
	if m := math.Abs(want); m > 1 {
		d /= m
	}
	return d
}

// TestForwardFused32MatchesF64: the float32 tiled kernel must match the f64
// fused kernel within fp32 tolerance across shapes that hit every
// tile-remainder path (rows and outputs not divisible by 4/2).
func TestForwardFused32MatchesF64(t *testing.T) {
	rng := datagen.NewRand(21)
	for _, shape := range [][3]int{
		{1, 3, 1}, {2, 5, 4}, {3, 8, 5}, {4, 16, 4}, {5, 7, 9},
		{8, 33, 12}, {17, 10, 6}, {64, 21, 13},
	} {
		rows, in, out := shape[0], shape[1], shape[2]
		l := NewLinear("t", in, out, rng)
		l32 := NewLinear32(l)
		x := NewMatrix(rows, in)
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2 - 1
		}
		x32 := NewMatrix32(rows, in)
		ConvertRows32(x32, x)
		for _, relu := range []bool{false, true} {
			want := NewMatrix(rows, out)
			l.ForwardFused(x, want, relu)
			got := NewMatrix32(rows, out)
			// Dirty the output to prove full overwrite.
			for i := range got.Data {
				got.Data[i] = 999
			}
			l32.ForwardFused(x32, got, relu)
			for i := range want.Data {
				if d := relDiff(got.Data[i], want.Data[i]); d > f32RelTol {
					t.Fatalf("shape %v relu=%v: fused32[%d]=%v want %v (relΔ=%g)",
						shape, relu, i, got.Data[i], want.Data[i], d)
				}
			}
		}
	}
}

// TestSegmentAvgPool32MatchesF64: CSR pooling in float32 must agree with the
// f64 version, including empty segments (fully overwritten to zero).
func TestSegmentAvgPool32MatchesF64(t *testing.T) {
	rng := datagen.NewRand(22)
	const b, h = 5, 3
	lens := []int{2, 0, 4, 1, 3}
	total := 0
	for _, n := range lens {
		total += n
	}
	x := NewMatrix(total, h)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	offsets := make([]int, b+1)
	for i, n := range lens {
		offsets[i+1] = offsets[i] + n
	}
	want := NewMatrix(b, h)
	SegmentAvgPool(x, offsets, want)

	x32 := NewMatrix32(total, h)
	ConvertRows32(x32, x)
	got := NewMatrix32(b, h)
	for i := range got.Data {
		got.Data[i] = 999 // prove full overwrite, incl. empty segments
	}
	SegmentAvgPool32(x32, offsets, got)
	for i := range want.Data {
		if d := relDiff(got.Data[i], want.Data[i]); d > f32RelTol {
			t.Fatalf("pool32[%d] = %v, want %v (relΔ=%g)", i, got.Data[i], want.Data[i], d)
		}
	}
}

// TestSigmoidInPlace32MatchesF64: the f32 sigmoid computes through float64
// exp and rounds once, so it should sit within one ulp-ish of the f64 one.
func TestSigmoidInPlace32MatchesF64(t *testing.T) {
	rng := datagen.NewRand(23)
	x := NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*8 - 4
	}
	want := x.Clone()
	SigmoidInPlace(want)
	x32 := NewMatrix32(3, 4)
	ConvertRows32(x32, x)
	SigmoidInPlace32(x32)
	for i := range want.Data {
		if d := relDiff(x32.Data[i], want.Data[i]); d > f32RelTol {
			t.Fatalf("sigmoid32[%d] = %v, want %v", i, x32.Data[i], want.Data[i])
		}
	}
}

// TestWorkspace32Reuse mirrors TestWorkspaceReuse for the float32 arena:
// steady-state Reserve/Alloc must not allocate, and growth must not corrupt
// earlier matrices.
func TestWorkspace32Reuse(t *testing.T) {
	var ws Workspace32
	ws.Reserve(12)
	a := ws.Alloc(2, 3)
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	b := ws.Alloc(10, 10)
	b.Data[0] = 7
	for i := range a.Data {
		if a.Data[i] != float32(i) {
			t.Fatalf("growth corrupted earlier matrix at %d", i)
		}
	}

	ws2 := &Workspace32{}
	ws2.Reserve(64)
	ws2.Alloc(4, 8) // warm
	allocs := testing.AllocsPerRun(20, func() {
		ws2.Reserve(64)
		m := ws2.Alloc(4, 8)
		m.Data[0] = 1
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reserve/Alloc allocates %.1f times, want 0", allocs)
	}
}

// TestLinear8Quantization: the int8 path reconstructs the f64 forward within
// quantization error. With symmetric per-layer weight scale and a dynamic
// per-matrix activation scale, the absolute output error is bounded by
// roughly in * (|x|max/254 * |w|max + |w|max/254 * |x|max); we assert a
// conservative multiple of that analytic bound rather than a magic epsilon.
func TestLinear8Quantization(t *testing.T) {
	rng := datagen.NewRand(24)
	for _, shape := range [][3]int{{1, 4, 3}, {3, 16, 5}, {7, 33, 9}} {
		rows, in, out := shape[0], shape[1], shape[2]
		l := NewLinear("t", in, out, rng)
		l8 := NewLinear8(l)
		x := NewMatrix(rows, in)
		var xMax, wMax float64
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2 - 1
			if a := math.Abs(x.Data[i]); a > xMax {
				xMax = a
			}
		}
		for _, w := range l.W.Data {
			if a := math.Abs(w); a > wMax {
				wMax = a
			}
		}
		x32 := NewMatrix32(rows, in)
		ConvertRows32(x32, x)
		xq := make([]int8, rows*in)
		xs := QuantizeRows8(x32, xq)

		for _, relu := range []bool{false, true} {
			want := NewMatrix(rows, out)
			l.ForwardFused(x, want, relu)
			got := NewMatrix32(rows, out)
			for i := range got.Data {
				got.Data[i] = 999
			}
			l8.ForwardFused(xq, rows, xs, got, relu)
			// Per-element quantization step is scale/2 for each factor.
			bound := 2 * float64(in) * (xMax/254*wMax + wMax/254*xMax)
			for i := range want.Data {
				if d := math.Abs(float64(got.Data[i]) - want.Data[i]); d > bound {
					t.Fatalf("shape %v relu=%v: int8[%d]=%v want %v (|Δ|=%g > bound %g)",
						shape, relu, i, got.Data[i], want.Data[i], d, bound)
				}
			}
		}
	}
}

// TestQuantizeRows8ZeroInput: an all-zero activation matrix must produce
// scale 0 and a zeroed quantized image (no NaN from a 0/0 inverse scale).
func TestQuantizeRows8ZeroInput(t *testing.T) {
	x := NewMatrix32(2, 3)
	xq := make([]int8, 6)
	for i := range xq {
		xq[i] = 42
	}
	if s := QuantizeRows8(x, xq); s != 0 {
		t.Fatalf("zero input scale = %v, want 0", s)
	}
	for i, q := range xq {
		if q != 0 {
			t.Fatalf("xq[%d] = %d, want 0", i, q)
		}
	}
}

func BenchmarkLinearForwardFused32(b *testing.B) {
	l, x := benchLinear(b)
	l32 := NewLinear32(l)
	x32 := NewMatrix32(benchBatch, benchIn)
	ConvertRows32(x32, x)
	y := NewMatrix32(benchBatch, benchOut)
	b.SetBytes(int64(benchBatch * benchIn * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l32.ForwardFused(x32, y, true)
	}
}

func BenchmarkLinearForwardFused8(b *testing.B) {
	l, x := benchLinear(b)
	l8 := NewLinear8(l)
	x32 := NewMatrix32(benchBatch, benchIn)
	ConvertRows32(x32, x)
	xq := make([]int8, benchBatch*benchIn)
	xs := QuantizeRows8(x32, xq)
	y := NewMatrix32(benchBatch, benchOut)
	b.SetBytes(int64(benchBatch * benchIn))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l8.ForwardFused(xq, benchBatch, xs, y, true)
	}
}

func BenchmarkSegmentAvgPool32(b *testing.B) {
	rng := datagen.NewRand(2)
	const sets, valid, width = 64, 2, 64
	x := NewMatrix32(sets*valid, width)
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64())
	}
	offsets := make([]int, sets+1)
	for i := 1; i <= sets; i++ {
		offsets[i] = i * valid
	}
	out := NewMatrix32(sets, width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SegmentAvgPool32(x, offsets, out)
	}
}
