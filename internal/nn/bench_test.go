package nn

import (
	"testing"

	"deepsketch/internal/datagen"
)

// Layer sizes mirror the MSCN table module at paper-ish scale: input width
// dominated by the 1000-bit sample bitmap, hidden width 64.
const (
	benchIn    = 1008
	benchOut   = 64
	benchBatch = 256
)

func benchLinear(b *testing.B) (*Linear, Matrix) {
	b.Helper()
	rng := datagen.NewRand(1)
	l := NewLinear("bench", benchIn, benchOut, rng)
	x := NewMatrix(benchBatch, benchIn)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	return l, x
}

func BenchmarkLinearForward(b *testing.B) {
	l, x := benchLinear(b)
	b.SetBytes(int64(benchBatch * benchIn * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x)
	}
}

// BenchmarkLinearForwardFused measures the serial register-tiled inference
// kernel against BenchmarkLinearForward (parallel per-row dot loop) on the
// same shape. Zero allocs/op expected.
func BenchmarkLinearForwardFused(b *testing.B) {
	l, x := benchLinear(b)
	y := NewMatrix(benchBatch, benchOut)
	b.SetBytes(int64(benchBatch * benchIn * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ForwardFused(x, y, true)
	}
}

// BenchmarkSegmentAvgPool mirrors BenchmarkMaskedAvgPool on the packed
// representation: same 64 sets of 2 valid elements, no padding rows.
func BenchmarkSegmentAvgPool(b *testing.B) {
	rng := datagen.NewRand(2)
	const sets, valid, width = 64, 2, 64
	x := NewMatrix(sets*valid, width)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	offsets := make([]int, sets+1)
	for i := 1; i <= sets; i++ {
		offsets[i] = i * valid
	}
	out := NewMatrix(sets, width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SegmentAvgPool(x, offsets, out)
	}
}

func BenchmarkLinearBackward(b *testing.B) {
	l, x := benchLinear(b)
	y := l.Forward(x)
	dy := NewMatrix(y.Rows, y.Cols)
	for i := range dy.Data {
		dy.Data[i] = 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Backward(x, dy)
		l.W.ZeroGrad()
		l.B.ZeroGrad()
	}
}

func BenchmarkReLU(b *testing.B) {
	_, x := benchLinear(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReLU(x)
	}
}

func BenchmarkMaskedAvgPool(b *testing.B) {
	rng := datagen.NewRand(2)
	const sets, elems, width = 64, 4, 64
	x := NewMatrix(sets*elems, width)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	mask := make([]float64, sets*elems)
	for i := range mask {
		if i%elems < 2 {
			mask[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskedAvgPool(x, mask, sets, elems)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := datagen.NewRand(3)
	l := NewLinear("bench", benchIn, benchOut, rng)
	opt := NewAdam(1e-3, 5)
	params := l.Params()
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = rng.Float64() - 0.5
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-fill grads so the step has work to do.
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] = 0.01
			}
		}
		opt.Step(params)
	}
}

func BenchmarkQErrorLoss(b *testing.B) {
	rng := datagen.NewRand(4)
	norm := LabelNorm{MinLog: 0, MaxLog: 15}
	preds := make([]float64, 1024)
	targets := make([]float64, 1024)
	for i := range preds {
		preds[i] = rng.Float64()
		targets[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Loss(LossQError, norm, preds, targets, 1e4)
	}
}
