package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestBackwardFusedMatchesBackwardInto: the serial packed backward kernel
// must agree with the padded training backward (same math, different
// parallelization) on random layers within float tolerance.
func TestBackwardFusedMatchesBackwardInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ rows, in, out int }{
		{1, 3, 2}, {5, 7, 4}, {17, 33, 9}, {70, 16, 16},
	} {
		l := NewLinear("l", shape.in, shape.out, rng)
		x := NewMatrix(shape.rows, shape.in)
		dy := NewMatrix(shape.rows, shape.out)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range dy.Data {
			if rng.Float64() < 0.8 { // leave some exact zeros (masked rows)
				dy.Data[i] = rng.NormFloat64()
			}
		}

		l.W.ZeroGrad()
		l.B.ZeroGrad()
		wantDx := NewMatrix(shape.rows, shape.in)
		l.BackwardInto(x, dy, &wantDx)
		wantDW := append([]float64(nil), l.W.Grad...)
		wantDB := append([]float64(nil), l.B.Grad...)

		dW := make([]float64, shape.in*shape.out)
		dB := make([]float64, shape.out)
		gotDx := NewMatrix(shape.rows, shape.in)
		l.BackwardFused(x, dy, &gotDx, dW, dB)

		const tol = 1e-12
		for i := range wantDW {
			if math.Abs(dW[i]-wantDW[i]) > tol {
				t.Fatalf("shape %+v: dW[%d] = %v, want %v", shape, i, dW[i], wantDW[i])
			}
		}
		for i := range wantDB {
			if math.Abs(dB[i]-wantDB[i]) > tol {
				t.Fatalf("shape %+v: dB[%d] = %v, want %v", shape, i, dB[i], wantDB[i])
			}
		}
		for i := range wantDx.Data {
			if math.Abs(gotDx.Data[i]-wantDx.Data[i]) > tol {
				t.Fatalf("shape %+v: dx[%d] = %v, want %v", shape, i, gotDx.Data[i], wantDx.Data[i])
			}
		}

		// BackwardFused accumulates: a second call must double the gradients.
		l.BackwardFused(x, dy, nil, dW, dB)
		for i := range wantDW {
			if math.Abs(dW[i]-2*wantDW[i]) > 10*tol {
				t.Fatalf("shape %+v: accumulated dW[%d] = %v, want %v", shape, i, dW[i], 2*wantDW[i])
			}
		}
	}
}

// TestSegmentAvgPoolBackwardMatchesMasked: the segment-scaled scatter must
// agree with the masked backward on equivalent padded layouts, including
// empty segments.
func TestSegmentAvgPoolBackwardMatchesMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const h = 6
	segs := []int{3, 0, 1, 5, 0, 2} // element counts, incl. empty segments
	b := len(segs)
	maxS := 0
	total := 0
	offsets := make([]int, b+1)
	for i, n := range segs {
		offsets[i] = total
		total += n
		if n > maxS {
			maxS = n
		}
	}
	offsets[b] = total

	dOut := NewMatrix(b, h)
	for i := range dOut.Data {
		dOut.Data[i] = rng.NormFloat64()
	}

	// Packed scatter.
	dx := NewMatrix(total, h)
	for i := range dx.Data {
		dx.Data[i] = 99 // dirty: must be fully overwritten for non-empty rows
	}
	SegmentAvgPoolBackward(dOut, offsets, dx)

	// Padded reference: same segments laid out with masks.
	mask := make([]float64, b*maxS)
	for i, n := range segs {
		for s := 0; s < n; s++ {
			mask[i*maxS+s] = 1
		}
	}
	want := MaskedAvgPoolBackward(dOut, mask, b, maxS)

	for i, n := range segs {
		for s := 0; s < n; s++ {
			packed := dx.Row(offsets[i] + s)
			padded := want.Row(i*maxS + s)
			for c := 0; c < h; c++ {
				if math.Abs(packed[c]-padded[c]) > 1e-15 {
					t.Fatalf("segment %d element %d col %d: packed %v, padded %v",
						i, s, c, packed[c], padded[c])
				}
			}
		}
	}
}

// TestLossSumIntoMatchesLoss: sharded loss (per-shard sums + full-batch invN
// gradient scaling) must reproduce Loss exactly when combined in order.
func TestLossSumIntoMatchesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	norm := LabelNorm{MinLog: 0, MaxLog: 10}
	for _, kind := range []LossKind{LossQError, LossL1Log} {
		n := 23
		preds := make([]float64, n)
		targets := make([]float64, n)
		for i := range preds {
			preds[i] = rng.Float64()
			targets[i] = rng.Float64()
		}
		wantLoss, wantGrad := Loss(kind, norm, preds, targets, 100)

		grad := make([]float64, n)
		invN := 1.0 / float64(n)
		var sum float64
		for _, bounds := range [][2]int{{0, 7}, {7, 16}, {16, 23}} {
			lo, hi := bounds[0], bounds[1]
			sum += LossSumInto(kind, norm, preds[lo:hi], targets[lo:hi], grad[lo:hi], 100, invN)
		}
		if got := sum * invN; math.Abs(got-wantLoss) > 1e-12 {
			t.Fatalf("kind %v: sharded loss %v, want %v", kind, got, wantLoss)
		}
		for i := range grad {
			if grad[i] != wantGrad[i] {
				t.Fatalf("kind %v: grad[%d] = %v, want %v", kind, i, grad[i], wantGrad[i])
			}
		}
	}
}
