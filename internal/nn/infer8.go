package nn

// Experimental int8 inference kernels: a per-layer-scaled quantized GEMM.
// Weights are quantized once per layer with a symmetric scale
// (max|W| / 127); activations are quantized dynamically per forward call
// with one scale per input matrix, the GEMM accumulates in int32, and the
// result dequantizes straight into float32 with the bias added and ReLU
// optionally fused. This is a stretch probe behind the engine's precision
// flag, not a tuned production path: scalar Go gains no SIMD dot-product
// instruction from int8, so the win is limited to quartered weight traffic,
// and accuracy is bounded only by the (looser) int8 equivalence tests.

// Linear8 is an inference-only int8 snapshot of a Linear: W row-major
// [out][in] quantized symmetrically with one per-layer scale, bias kept in
// float32 and applied after dequantization.
type Linear8 struct {
	In, Out int
	W       []int8
	// WScale dequantizes weights: w_f32 ≈ float32(w_int8) * WScale.
	WScale float32
	B      []float32
}

// NewLinear8 quantizes a Linear's current weights to int8 once. An
// all-zero weight matrix gets scale 0 (the GEMM then yields pure bias).
func NewLinear8(l *Linear) *Linear8 {
	s := &Linear8{In: l.In, Out: l.Out, W: make([]int8, len(l.W.Data)), B: make([]float32, len(l.B.Data))}
	var maxAbs float64
	for _, v := range l.W.Data {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs > 0 {
		s.WScale = float32(maxAbs / 127)
		inv := 127 / maxAbs
		for i, v := range l.W.Data {
			q := v * inv
			if q >= 0 {
				s.W[i] = int8(q + 0.5)
			} else {
				s.W[i] = int8(q - 0.5)
			}
		}
	}
	for i, v := range l.B.Data {
		s.B[i] = float32(v)
	}
	return s
}

// QuantizeRows8 quantizes x into xq (len ≥ x.Rows*x.Cols) with one dynamic
// symmetric scale for the whole matrix, returning the dequantization scale
// (x_f32 ≈ float32(xq) * scale). An all-zero input returns scale 0 with xq
// zeroed over the matrix extent.
//
//deepsketch:zeroalloc
func QuantizeRows8(x Matrix32, xq []int8) float32 {
	n := x.Rows * x.Cols
	var maxAbs float32
	for _, v := range x.Data[:n] {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		for i := range xq[:n] {
			xq[i] = 0
		}
		return 0
	}
	inv := 127 / maxAbs
	for i, v := range x.Data[:n] {
		q := v * inv
		if q >= 0 {
			xq[i] = int8(q + 0.5)
		} else {
			xq[i] = int8(q - 0.5)
		}
	}
	return maxAbs / 127
}

// ForwardFused computes y = dequant(xq·Wᵀ) + b into the preallocated y,
// optionally fusing ReLU. xq is the int8 image of the input produced by
// QuantizeRows8 (rows×l.In, row-major) and xScale its dequantization
// scale; y must be rows×l.Out. The accumulation is int32 — safe for inner
// dimensions up to 2^17 at worst-case ±127 magnitudes, far beyond any MSCN
// layer width.
//
//deepsketch:zeroalloc
func (l *Linear8) ForwardFused(xq []int8, rows int, xScale float32, y Matrix32, relu bool) {
	if y.Rows != rows || y.Cols != l.Out {
		panic("nn: Linear8.ForwardFused dimension mismatch")
	}
	scale := l.WScale * xScale
	in, out := l.In, l.Out
	for r := 0; r < rows; r++ {
		xr := xq[r*in : (r+1)*in]
		yr := y.Row(r)
		o := 0
		for ; o+2 <= out; o += 2 {
			w0 := l.W[o*in : o*in+in]
			w1 := l.W[(o+1)*in : (o+1)*in+in]
			var a0, a1 int32
			for k := 0; k < in; k++ {
				xv := int32(xr[k])
				a0 += xv * int32(w0[k])
				a1 += xv * int32(w1[k])
			}
			v0 := float32(a0)*scale + l.B[o]
			v1 := float32(a1)*scale + l.B[o+1]
			if relu {
				v0, v1 = relu32(v0), relu32(v1)
			}
			yr[o], yr[o+1] = v0, v1
		}
		for ; o < out; o++ {
			wo := l.W[o*in : o*in+in]
			var a int32
			for k := 0; k < in; k++ {
				a += int32(xr[k]) * int32(wo[k])
			}
			v := float32(a)*scale + l.B[o]
			if relu {
				v = relu32(v)
			}
			yr[o] = v
		}
	}
}
