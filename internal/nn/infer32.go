package nn

import "math"

// Reduced-precision (float32) mirrors of the packed inference kernels in
// infer.go. Halving the element size halves the weight-matrix footprint and
// the memory traffic the GEMM pays per output unit — the first layer of
// every set module streams a weight matrix whose input width is dominated
// by the sample bitmap. Under Go's scalar codegen the fused GEMM is
// execution-port-bound (float32 and float64 multiply-add have identical
// scalar throughput), so the measured end-to-end win is modest — ~10% on
// batched ragged shapes, parity on single-query shapes that fit in L2 —
// and grows when weights spill cache (larger samples, wider hidden layers,
// many resident sketches). The format is also the groundwork for a SIMD
// backend, where lane width doubles the arithmetic rate. The kernels follow
// the same shape contracts and ownership rules as their f64 counterparts:
// serial, allocation-free, one Workspace32 per concurrent pass. Training
// stays entirely float64 (Adam moments, gradient reduction, the fused
// backward kernels): reduced precision is an inference-only trade, gated by
// the q-error equivalence tests in the mscn package.

// Matrix32 is a dense row-major float32 matrix — the inference-only sibling
// of Matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed Rows×Cols float32 matrix.
func NewMatrix32(rows, cols int) Matrix32 {
	return Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns the r-th row as a slice aliasing the matrix storage.
//
//deepsketch:zeroalloc
func (m Matrix32) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Workspace32 is the float32 bump-allocated scratch arena for reduced-
// precision forward passes — same Reserve/Alloc/Reset lifecycle and
// steady-state zero-allocation behavior as Workspace, same ownership rule:
// one pass at a time, pool for concurrency.
type Workspace32 struct {
	buf []float32
	off int
}

// Reserve resets the arena and ensures capacity for n float32s, so that
// subsequent Allocs totalling at most n cannot grow the buffer mid-pass.
//
//deepsketch:zeroalloc
func (w *Workspace32) Reserve(n int) {
	if cap(w.buf) < n {
		//deepsketch:ignore zeroalloc amortized arena growth; steady state never reallocates
		w.buf = make([]float32, n)
	} else {
		w.buf = w.buf[:cap(w.buf)]
	}
	w.off = 0
}

// Reset recycles the arena, invalidating previously allocated matrices.
func (w *Workspace32) Reset() { w.off = 0 }

// Alloc returns a rows×cols matrix carved from the arena. Contents are
// uninitialized — every kernel writing into it must overwrite or zero it.
//
//deepsketch:zeroalloc
func (w *Workspace32) Alloc(rows, cols int) Matrix32 {
	n := rows * cols
	if w.off+n > len(w.buf) {
		grow := 2 * len(w.buf)
		if grow < n {
			grow = n
		}
		//deepsketch:ignore zeroalloc amortized arena growth; steady state never reallocates
		w.buf = make([]float32, grow)
		w.off = 0
	}
	m := Matrix32{Rows: rows, Cols: cols, Data: w.buf[w.off : w.off+n : w.off+n]}
	w.off += n
	return m
}

// Linear32 is an inference-only float32 snapshot of a Linear's weights:
// y = x·Wᵀ + b with W row-major [out][in]. It holds no gradients and is
// immutable after construction — build one per weight version (the mscn
// engine converts once per Model weight generation, not per forward).
type Linear32 struct {
	In, Out int
	W, B    []float32
}

// NewLinear32 converts a Linear's current weights to float32 once.
func NewLinear32(l *Linear) *Linear32 {
	s := &Linear32{In: l.In, Out: l.Out, W: make([]float32, len(l.W.Data)), B: make([]float32, len(l.B.Data))}
	for i, v := range l.W.Data {
		s.W[i] = float32(v)
	}
	for i, v := range l.B.Data {
		s.B[i] = float32(v)
	}
	return s
}

// ForwardFused computes y = x·Wᵀ + b into the preallocated y, optionally
// fusing ReLU — the float32 mirror of Linear.ForwardFused, with the same
// 2×4 register tiling (the tile is sized by register count, which float32
// does not change in scalar Go; the win is halved weight traffic). Serial,
// no allocations; y must be x.Rows×l.Out and may not alias x.
//
//deepsketch:zeroalloc
func (l *Linear32) ForwardFused(x, y Matrix32, relu bool) {
	if x.Cols != l.In || y.Rows != x.Rows || y.Cols != l.Out {
		panic("nn: Linear32.ForwardFused dimension mismatch")
	}
	gemmBias32(x, l.W, l.B, y, relu)
}

// gemmBias32 is the float32 twin of gemmBias: 2 rows × 4 output units per
// tile, 8 independent accumulators, one streaming pass over the shared
// inner dimension.
//
//deepsketch:zeroalloc
func gemmBias32(x Matrix32, w, bias []float32, y Matrix32, relu bool) {
	in, out, n := x.Cols, y.Cols, x.Rows
	r := 0
	for ; r+2 <= n; r += 2 {
		x0 := x.Row(r)
		x1 := x.Row(r + 1)
		y0 := y.Row(r)
		y1 := y.Row(r + 1)
		o := 0
		for ; o+4 <= out; o += 4 {
			w0 := w[o*in : o*in+in]
			w1 := w[(o+1)*in : (o+1)*in+in]
			w2 := w[(o+2)*in : (o+2)*in+in]
			w3 := w[(o+3)*in : (o+3)*in+in]
			var a00, a01, a02, a03 float32
			var a10, a11, a12, a13 float32
			for k := 0; k < in; k++ {
				xv0, xv1 := x0[k], x1[k]
				wv0, wv1, wv2, wv3 := w0[k], w1[k], w2[k], w3[k]
				a00 += xv0 * wv0
				a01 += xv0 * wv1
				a02 += xv0 * wv2
				a03 += xv0 * wv3
				a10 += xv1 * wv0
				a11 += xv1 * wv1
				a12 += xv1 * wv2
				a13 += xv1 * wv3
			}
			b0, b1, b2, b3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			a00 += b0
			a01 += b1
			a02 += b2
			a03 += b3
			a10 += b0
			a11 += b1
			a12 += b2
			a13 += b3
			if relu {
				a00 = relu32(a00)
				a01 = relu32(a01)
				a02 = relu32(a02)
				a03 = relu32(a03)
				a10 = relu32(a10)
				a11 = relu32(a11)
				a12 = relu32(a12)
				a13 = relu32(a13)
			}
			y0[o], y0[o+1], y0[o+2], y0[o+3] = a00, a01, a02, a03
			y1[o], y1[o+1], y1[o+2], y1[o+3] = a10, a11, a12, a13
		}
		for ; o < out; o++ {
			wo := w[o*in : o*in+in]
			var a0, a1 float32
			for k := 0; k < in; k++ {
				wv := wo[k]
				a0 += x0[k] * wv
				a1 += x1[k] * wv
			}
			bo := bias[o]
			a0, a1 = a0+bo, a1+bo
			if relu {
				a0, a1 = relu32(a0), relu32(a1)
			}
			y0[o], y1[o] = a0, a1
		}
	}
	for ; r < n; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		o := 0
		for ; o+2 <= out; o += 2 {
			w0 := w[o*in : o*in+in]
			w1 := w[(o+1)*in : (o+1)*in+in]
			var a0, a1 float32
			for k := 0; k < in; k++ {
				xv := xr[k]
				a0 += xv * w0[k]
				a1 += xv * w1[k]
			}
			a0, a1 = a0+bias[o], a1+bias[o+1]
			if relu {
				a0, a1 = relu32(a0), relu32(a1)
			}
			yr[o], yr[o+1] = a0, a1
		}
		for ; o < out; o++ {
			wo := w[o*in : o*in+in]
			var a float32
			for k := 0; k < in; k++ {
				a += xr[k] * wo[k]
			}
			a += bias[o]
			if relu {
				a = relu32(a)
			}
			yr[o] = a
		}
	}
}

//deepsketch:zeroalloc
func relu32(v float32) float32 {
	if v > 0 {
		return v
	}
	return 0
}

// SegmentAvgPool32 averages contiguous row segments of x into rows of out —
// the float32 mirror of SegmentAvgPool, with identical CSR offset semantics
// (empty segments yield a zero row; out is fully overwritten).
//
//deepsketch:zeroalloc
func SegmentAvgPool32(x Matrix32, offsets []int, out Matrix32) {
	b := out.Rows
	if len(offsets) != b+1 || offsets[b] != x.Rows || out.Cols != x.Cols {
		panic("nn: SegmentAvgPool32 shape mismatch")
	}
	for i := 0; i < b; i++ {
		dst := out.Row(i)
		lo, hi := offsets[i], offsets[i+1]
		if hi == lo {
			for c := range dst {
				dst[c] = 0
			}
			continue
		}
		copy(dst, x.Row(lo))
		for r := lo + 1; r < hi; r++ {
			src := x.Row(r)
			for c, v := range src {
				dst[c] += v
			}
		}
		if n := hi - lo; n > 1 {
			inv := 1.0 / float32(n)
			for c := range dst {
				dst[c] *= inv
			}
		}
	}
}

// SigmoidInPlace32 applies 1/(1+e^-x) element-wise, overwriting x. The
// exponential is computed in float64 (math.Exp has no float32 twin in the
// standard library) and rounded once per element.
//
//deepsketch:zeroalloc
func SigmoidInPlace32(x Matrix32) {
	for i, v := range x.Data {
		x.Data[i] = float32(1.0 / (1.0 + math.Exp(-float64(v))))
	}
}

// ConvertRows32 copies src (float64) into dst (float32) element-wise; the
// matrices must have identical shapes. It is how packed feature rows enter
// the reduced-precision pipeline: the conversion touches each input element
// once, which is negligible next to the GEMMs that re-stream the weight
// matrices per output unit.
//
//deepsketch:zeroalloc
func ConvertRows32(dst Matrix32, src Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("nn: ConvertRows32 shape mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
}
