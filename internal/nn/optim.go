package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba) with optional global-norm
// gradient clipping — the paper trains MSCN with Adam at the PyTorch default
// learning rate.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // <= 0 disables clipping

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr, clipNorm float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: clipNorm,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// GlobalGradNorm returns the L2 norm of all gradients combined.
func GlobalGradNorm(params []*Param) float64 {
	var ss float64
	for _, p := range params {
		for _, g := range p.Grad {
			ss += g * g
		}
	}
	return math.Sqrt(ss)
}

// Step applies one update to all parameters from their accumulated
// gradients, then zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	if a.ClipNorm > 0 {
		norm := GlobalGradNorm(params)
		if norm > a.ClipNorm {
			scale := a.ClipNorm / (norm + 1e-12)
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] *= scale
				}
			}
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Data))
			a.v[p] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}
