package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam optimizer (Kingma & Ba) with optional global-norm
// gradient clipping — the paper trains MSCN with Adam at the PyTorch default
// learning rate.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // <= 0 disables clipping

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr, clipNorm float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: clipNorm,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// GlobalGradNorm returns the L2 norm of all gradients combined.
func GlobalGradNorm(params []*Param) float64 {
	var ss float64
	for _, p := range params {
		for _, g := range p.Grad {
			ss += g * g
		}
	}
	return math.Sqrt(ss)
}

// OptState is the serializable optimizer state of an Adam run: the step
// count and the first/second moment estimates, stored parallel to the
// parameter list the optimizer was stepped with (the Params() serialization
// contract fixes that order). Exporting it after training and restoring it
// before a warm-start fine-tune resumes optimization where it left off —
// the moments carry the per-parameter learning-rate adaptation, so a small
// drift-delta workload converges in a fraction of full-build epochs.
type OptState struct {
	Step int
	M    [][]float64
	V    [][]float64
}

// Clone deep-copies the state; a nil receiver clones to nil.
func (st *OptState) Clone() *OptState {
	if st == nil {
		return nil
	}
	c := &OptState{Step: st.Step, M: make([][]float64, len(st.M)), V: make([][]float64, len(st.V))}
	for i, m := range st.M {
		c.M[i] = append([]float64(nil), m...)
	}
	for i, v := range st.V {
		c.V[i] = append([]float64(nil), v...)
	}
	return c
}

// ExportState copies the optimizer's moments for params (in order) into a
// fresh OptState. Parameters the optimizer has not stepped yet export zero
// moments, matching what Step would have lazily allocated.
func (a *Adam) ExportState(params []*Param) *OptState {
	st := &OptState{Step: a.t, M: make([][]float64, len(params)), V: make([][]float64, len(params))}
	for i, p := range params {
		st.M[i] = make([]float64, len(p.Data))
		st.V[i] = make([]float64, len(p.Data))
		if m, ok := a.m[p]; ok {
			copy(st.M[i], m)
		}
		if v, ok := a.v[p]; ok {
			copy(st.V[i], v)
		}
	}
	return st
}

// RestoreState loads a previously exported state for params (in the same
// order), copying the moments so the caller's OptState stays untouched by
// subsequent steps. The state must match the parameter list element-for-
// element.
func (a *Adam) RestoreState(params []*Param, st *OptState) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: optimizer state has %d/%d moment vectors, architecture expects %d",
			len(st.M), len(st.V), len(params))
	}
	for i, p := range params {
		if len(st.M[i]) != len(p.Data) || len(st.V[i]) != len(p.Data) {
			return fmt.Errorf("nn: optimizer state for %s has %d/%d elements, architecture expects %d",
				p.Name, len(st.M[i]), len(st.V[i]), len(p.Data))
		}
	}
	a.t = st.Step
	a.m = make(map[*Param][]float64, len(params))
	a.v = make(map[*Param][]float64, len(params))
	for i, p := range params {
		a.m[p] = append([]float64(nil), st.M[i]...)
		a.v[p] = append([]float64(nil), st.V[i]...)
	}
	return nil
}

// Step applies one update to all parameters from their accumulated
// gradients, then zeroes the gradients.
//
//deepsketch:deterministic
func (a *Adam) Step(params []*Param) {
	if a.ClipNorm > 0 {
		norm := GlobalGradNorm(params)
		if norm > a.ClipNorm {
			scale := a.ClipNorm / (norm + 1e-12)
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] *= scale
				}
			}
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Data))
			a.v[p] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}
