package nn

// Packed training kernels: the backward counterparts of infer.go's fused
// forward path. Like the forward kernels they are deliberately serial and
// allocation-free — data-parallel training runs one worker per minibatch
// shard, each backpropagating its own packed sub-batch into private gradient
// buffers from a private workspace arena. Concurrency comes from the shards,
// never from fanning a single kernel across cores, which is what makes the
// worker-ordered gradient reduction (and therefore training itself)
// deterministic for a fixed parallelism.

// BackwardFused is the serial backward of a Linear layer for the packed
// training path. Given the forward input x and the upstream gradient dy, it
// accumulates the parameter gradients into the caller's buffers — dW
// (l.In*l.Out, row-major like l.W) and dB (l.Out) — rather than into
// l.W.Grad/l.B.Grad, so concurrent workers never share accumulators. When dx
// is non-nil it is fully overwritten with the input gradient dy·W; passing
// nil skips that GEMM entirely (the first layer of each set module never
// needs gradients with respect to its features). Runs on the calling
// goroutine only and performs no allocations.
//
//deepsketch:deterministic
func (l *Linear) BackwardFused(x, dy Matrix, dx *Matrix, dW, dB []float64) {
	if dy.Cols != l.Out || x.Rows != dy.Rows || x.Cols != l.In {
		panic("nn: BackwardFused dimension mismatch")
	}
	if len(dW) != l.In*l.Out || len(dB) != l.Out {
		panic("nn: BackwardFused gradient buffer size mismatch")
	}
	w := l.W.Data

	// dx[r] = Σ_o dy[r,o] · W[o,:]
	if dx != nil {
		if dx.Rows != x.Rows || dx.Cols != l.In {
			panic("nn: BackwardFused dx dimension mismatch")
		}
		d := *dx
		for r := 0; r < x.Rows; r++ {
			dyr := dy.Row(r)
			dxr := d.Row(r)
			for i := range dxr {
				dxr[i] = 0
			}
			for o := 0; o < l.Out; o++ {
				if g := dyr[o]; g != 0 {
					axpy(g, w[o*l.In:(o+1)*l.In], dxr)
				}
			}
		}
	}

	// dW[o,:] += Σ_r dy[r,o] · x[r,:]; dB[o] += Σ_r dy[r,o]. Rows outer so
	// each accumulator sees its contributions in a fixed (row-major) order.
	for r := 0; r < x.Rows; r++ {
		dyr := dy.Row(r)
		xr := x.Row(r)
		for o := 0; o < l.Out; o++ {
			g := dyr[o]
			if g == 0 {
				continue
			}
			dB[o] += g
			axpy(g, xr, dW[o*l.In:(o+1)*l.In])
		}
	}
}

// SegmentAvgPoolBackward distributes dOut back to packed set-element rows —
// the backward of SegmentAvgPool, a segment-scaled scatter: every row of
// segment i receives dOut[i,:] / n_i where n_i is the segment length.
// offsets is the same CSR offset slice the forward used (len dOut.Rows+1);
// dx must be offsets[B]×dOut.Cols and is fully overwritten (empty segments
// own no rows, so there is nothing to clear for them). No allocations.
//
//deepsketch:deterministic
func SegmentAvgPoolBackward(dOut Matrix, offsets []int, dx Matrix) {
	b := dOut.Rows
	if len(offsets) != b+1 || offsets[b] != dx.Rows || dx.Cols != dOut.Cols {
		panic("nn: SegmentAvgPoolBackward shape mismatch")
	}
	for i := 0; i < b; i++ {
		lo, hi := offsets[i], offsets[i+1]
		if hi == lo {
			continue
		}
		src := dOut.Row(i)
		inv := 1.0 / float64(hi-lo)
		for r := lo; r < hi; r++ {
			dst := dx.Row(r)
			for c, v := range src {
				dst[c] = v * inv
			}
		}
	}
}
