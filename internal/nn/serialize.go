package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WriteParams serializes parameters as little-endian float64 blocks, each
// prefixed by its element count, in slice order. The format carries no
// names: readers must present the same parameter list in the same order,
// which model constructors guarantee for a fixed architecture.
func WriteParams(w io.Writer, params []*Param) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(params)))
	if _, err := w.Write(buf[:4]); err != nil {
		return fmt.Errorf("nn: write param count: %w", err)
	}
	for _, p := range params {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(p.Data)))
		if _, err := w.Write(buf[:4]); err != nil {
			return fmt.Errorf("nn: write %s length: %w", p.Name, err)
		}
		for _, v := range p.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				return fmt.Errorf("nn: write %s data: %w", p.Name, err)
			}
		}
	}
	return nil
}

// ReadParams deserializes into an existing parameter list, enforcing that
// counts and lengths match the target architecture exactly.
func ReadParams(r io.Reader, params []*Param) error {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("nn: read param count: %w", err)
	}
	if n := binary.LittleEndian.Uint32(buf[:4]); int(n) != len(params) {
		return fmt.Errorf("nn: serialized model has %d params, architecture expects %d", n, len(params))
	}
	for _, p := range params {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return fmt.Errorf("nn: read %s length: %w", p.Name, err)
		}
		if n := binary.LittleEndian.Uint32(buf[:4]); int(n) != len(p.Data) {
			return fmt.Errorf("nn: param %s has %d elements, architecture expects %d", p.Name, n, len(p.Data))
		}
		for i := range p.Data {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return fmt.Errorf("nn: read %s data: %w", p.Name, err)
			}
			p.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
	}
	return nil
}
