package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WriteParams serializes parameters as little-endian float64 blocks, each
// prefixed by its element count, in slice order. The format carries no
// names: readers must present the same parameter list in the same order,
// which model constructors guarantee for a fixed architecture.
func WriteParams(w io.Writer, params []*Param) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(params)))
	if _, err := w.Write(buf[:4]); err != nil {
		return fmt.Errorf("nn: write param count: %w", err)
	}
	for _, p := range params {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(p.Data)))
		if _, err := w.Write(buf[:4]); err != nil {
			return fmt.Errorf("nn: write %s length: %w", p.Name, err)
		}
		for _, v := range p.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				return fmt.Errorf("nn: write %s data: %w", p.Name, err)
			}
		}
	}
	return nil
}

// WriteOptState serializes an Adam optimizer state: the step count followed
// by per-parameter first/second moment blocks in parameter order. The format
// carries no names, like WriteParams: readers must know the architecture.
func WriteOptState(w io.Writer, st *OptState) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(st.Step))
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("nn: write opt step: %w", err)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(st.M)))
	if _, err := w.Write(buf[:4]); err != nil {
		return fmt.Errorf("nn: write opt param count: %w", err)
	}
	for i := range st.M {
		if len(st.V[i]) != len(st.M[i]) {
			return fmt.Errorf("nn: opt state param %d has %d m but %d v elements", i, len(st.M[i]), len(st.V[i]))
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(st.M[i])))
		if _, err := w.Write(buf[:4]); err != nil {
			return fmt.Errorf("nn: write opt block length: %w", err)
		}
		for _, block := range [2][]float64{st.M[i], st.V[i]} {
			for _, v := range block {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				if _, err := w.Write(buf[:]); err != nil {
					return fmt.Errorf("nn: write opt moments: %w", err)
				}
			}
		}
	}
	return nil
}

// ReadOptState deserializes a state written by WriteOptState, enforcing —
// like ReadParams — that counts and block lengths match the target
// architecture exactly before anything is allocated, so a corrupt or
// hostile stream (sketch uploads are network-facing) cannot demand
// arbitrarily large buffers.
func ReadOptState(r io.Reader, params []*Param) (*OptState, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("nn: read opt step: %w", err)
	}
	st := &OptState{Step: int(binary.LittleEndian.Uint64(buf[:]))}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("nn: read opt param count: %w", err)
	}
	if n := binary.LittleEndian.Uint32(buf[:4]); int(n) != len(params) {
		return nil, fmt.Errorf("nn: serialized opt state has %d params, architecture expects %d", n, len(params))
	}
	st.M = make([][]float64, len(params))
	st.V = make([][]float64, len(params))
	for i, p := range params {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return nil, fmt.Errorf("nn: read opt block length: %w", err)
		}
		if l := binary.LittleEndian.Uint32(buf[:4]); int(l) != len(p.Data) {
			return nil, fmt.Errorf("nn: opt state for %s has %d elements, architecture expects %d", p.Name, l, len(p.Data))
		}
		st.M[i] = make([]float64, len(p.Data))
		st.V[i] = make([]float64, len(p.Data))
		for _, block := range [2][]float64{st.M[i], st.V[i]} {
			for j := range block {
				if _, err := io.ReadFull(r, buf[:]); err != nil {
					return nil, fmt.Errorf("nn: read opt moments: %w", err)
				}
				block[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
		}
	}
	return st, nil
}

// ReadParams deserializes into an existing parameter list, enforcing that
// counts and lengths match the target architecture exactly.
func ReadParams(r io.Reader, params []*Param) error {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("nn: read param count: %w", err)
	}
	if n := binary.LittleEndian.Uint32(buf[:4]); int(n) != len(params) {
		return fmt.Errorf("nn: serialized model has %d params, architecture expects %d", n, len(params))
	}
	for _, p := range params {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return fmt.Errorf("nn: read %s length: %w", p.Name, err)
		}
		if n := binary.LittleEndian.Uint32(buf[:4]); int(n) != len(p.Data) {
			return fmt.Errorf("nn: param %s has %d elements, architecture expects %d", p.Name, n, len(p.Data))
		}
		for i := range p.Data {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return fmt.Errorf("nn: read %s data: %w", p.Name, err)
			}
			p.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
	}
	return nil
}
