package nn

import (
	"sync"
	"testing"
	"testing/quick"

	"deepsketch/internal/datagen"
)

// TestParallelRowsCoversExactly: the row partition must cover [0, n) with no
// gaps and no overlaps for any n.
func TestParallelRowsCoversExactly(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw % 2048)
		var mu sync.Mutex
		seen := make([]int, n)
		parallelRows(n, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParallelRowsZero(t *testing.T) {
	called := false
	parallelRows(0, func(lo, hi int) {
		if lo != hi {
			t.Error("zero rows should produce empty range")
		}
		called = true
	})
	if !called {
		t.Error("callback should still run once for inline path")
	}
}

// TestForwardMatchesSerial: the parallel forward must equal a serial
// reference computation.
func TestForwardMatchesSerial(t *testing.T) {
	rng := datagen.NewRand(123)
	l := NewLinear("l", 33, 17, rng)
	x := NewMatrix(parallelThreshold*2, 33) // force the parallel path
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	y := l.Forward(x)
	for r := 0; r < x.Rows; r++ {
		for o := 0; o < 17; o++ {
			var want float64
			for i := 0; i < 33; i++ {
				want += x.At(r, i) * l.W.Data[o*33+i]
			}
			want += l.B.Data[o]
			if diff := y.At(r, o) - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("forward[%d,%d] = %v, want %v", r, o, y.At(r, o), want)
			}
		}
	}
}

func TestDotAndAxpyEdgeLengths(t *testing.T) {
	// Exercise the unrolled loops' remainder handling at every small size.
	for n := 0; n < 9; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := 0; i < n; i++ {
			a[i] = float64(i + 1)
			b[i] = float64(2 * (i + 1))
			want += a[i] * b[i]
		}
		if got := dot(a, b); got != want {
			t.Errorf("dot len %d = %v, want %v", n, got, want)
		}
		y := make([]float64, n)
		axpy(2, a, y)
		for i := range y {
			if y[i] != 2*a[i] {
				t.Errorf("axpy len %d[%d] = %v", n, i, y[i])
			}
		}
	}
}
