// Package nn is a small from-scratch neural network library — the stand-in
// for PyTorch in this reproduction. It provides exactly what the MSCN model
// needs: dense matrices, fully-connected layers with backpropagation, ReLU
// and sigmoid activations, masked average-pooling over sets, the Adam
// optimizer with global-norm gradient clipping, the paper's mean q-error
// training objective, and deterministic weight initialization. Training is
// float64 and CPU-only; hot loops are parallelized across row blocks.
//
// Two forward paths coexist. The training path (Forward/ForwardInto,
// Backward/BackwardInto, MaskedAvgPool) keeps tape-friendly semantics and
// fans out across cores; its Into variants let the trainer reuse buffers
// between mini-batches. The inference path (ForwardFused, SegmentAvgPool,
// Workspace in infer.go) is serial, padding-free and allocation-free:
// packed ragged batches, a register-tiled fused Linear+ReLU GEMM, and
// bump-allocated scratch. A Workspace serves one forward pass at a time —
// concurrency comes from one Workspace per goroutine, never from sharing.
//
// Inference additionally offers reduced-precision mirrors: float32 kernels
// (infer32.go: Linear32, SegmentAvgPool32, Workspace32) that halve weight
// memory traffic, and an experimental per-layer-scaled int8 GEMM
// (infer8.go). Weight snapshots convert once per weight version; the f64
// training state is the single source of truth.
package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
//
//deepsketch:zeroalloc
func (m Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero clears all elements in place.
func (m Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Reshape resizes m to rows×cols in place, reusing the backing slice when
// its capacity allows and reallocating otherwise. Contents are unspecified
// afterwards; callers must fully overwrite (or Zero) the matrix.
func (m *Matrix) Reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
}

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

func (m Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// parallelThreshold is the minimum amount of row-work before forward/backward
// loops fan out across goroutines.
const parallelThreshold = 64

// parallelRows splits [0, n) into contiguous blocks and runs f on each block,
// using up to GOMAXPROCS goroutines. Small n runs inline.
func parallelRows(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers <= 1 {
		f(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
