package sqlparse

import (
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/workload"
)

// FuzzParseSQL: the parser must never panic on arbitrary input — it either
// returns a query that validates against the schema or an error.
func FuzzParseSQL(f *testing.F) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 3, Titles: 200, Keywords: 20, Companies: 10, Persons: 40})
	seeds := []string{
		"SELECT COUNT(*) FROM title t",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
		"SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND mk.keyword_id=7",
		"SELECT COUNT(*) FROM keyword k WHERE k.keyword='love'",
		"SELECT COUNT(*) FROM title t WHERE t.production_year=?",
		"select count ( * ) from title",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>-2000",
		"SELECT COUNT(*) FROM title t WHERE t.x='it''s'",
		"##########",
		"SELECT COUNT(*) FROM",
		"",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		res, err := Parse(d, sql)
		if err != nil {
			return
		}
		// Whatever parses must validate and render back to parseable SQL.
		if err := d.ValidateQuery(res.Query); err != nil {
			t.Fatalf("parsed query fails validation: %v (%q)", err, sql)
		}
		if _, err := Parse(d, res.Query.SQL(d)); err != nil {
			t.Fatalf("rendered SQL fails to re-parse: %v (%q)", err, sql)
		}
	})
}

// FuzzWorkloadRoundTrip drives the full workload round trip the serving
// path depends on: generate queries against a schema, render them to SQL,
// parse the SQL back, and require the signature to be a fixed point. A
// query whose signature shifts across the trip would park pending actuals
// under one key and resolve them under another, silently breaking the
// drift feedback loop (and the attack harness built on it).
func FuzzWorkloadRoundTrip(f *testing.F) {
	imdb := datagen.IMDb(datagen.IMDbConfig{Seed: 3, Titles: 200, Keywords: 20, Companies: 10, Persons: 40})
	tpch := datagen.TPCH(datagen.TPCHConfig{Seed: 3})
	f.Add(int64(1), byte(0), byte(8), byte(2), byte(3))
	f.Add(int64(17), byte(1), byte(16), byte(0), byte(0))
	f.Add(int64(-9000), byte(0), byte(32), byte(3), byte(4))
	f.Add(int64(0), byte(1), byte(1), byte(1), byte(1))
	f.Fuzz(func(t *testing.T, seed int64, dataset, count, maxJoins, maxPreds byte) {
		d := imdb
		if dataset%2 == 1 {
			d = tpch
		}
		cfg := workload.GenConfig{
			Seed:  seed,
			Count: int(count%32) + 1,
			// 0 falls back to the generator defaults — also worth fuzzing.
			MaxJoins: int(maxJoins % 4),
			MaxPreds: int(maxPreds % 5),
			Dedup:    true,
		}
		gen, err := workload.NewGenerator(d, cfg)
		if err != nil {
			t.Fatalf("generator config %+v rejected: %v", cfg, err)
		}
		for _, q := range gen.Generate() {
			sql := q.SQL(d)
			res, err := Parse(d, sql)
			if err != nil {
				t.Fatalf("generated query does not parse: %v (%q)", err, sql)
			}
			if res.Placeholder != nil {
				t.Fatalf("generated query parsed with a placeholder: %q", sql)
			}
			if got, want := res.Query.Signature(), q.Signature(); got != want {
				t.Fatalf("signature not stable across gen→SQL→parse: %q vs %q (%q)", got, want, sql)
			}
			// The rendered SQL of the parsed query must itself be a fixed
			// point — rendering is canonical, not merely re-parseable.
			if again := res.Query.SQL(d); again != sql {
				t.Fatalf("render not stable across the round trip: %q vs %q", again, sql)
			}
		}
	})
}
