package sqlparse

import (
	"testing"

	"deepsketch/internal/datagen"
)

// FuzzParseSQL: the parser must never panic on arbitrary input — it either
// returns a query that validates against the schema or an error.
func FuzzParseSQL(f *testing.F) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 3, Titles: 200, Keywords: 20, Companies: 10, Persons: 40})
	seeds := []string{
		"SELECT COUNT(*) FROM title t",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
		"SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND mk.keyword_id=7",
		"SELECT COUNT(*) FROM keyword k WHERE k.keyword='love'",
		"SELECT COUNT(*) FROM title t WHERE t.production_year=?",
		"select count ( * ) from title",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>-2000",
		"SELECT COUNT(*) FROM title t WHERE t.x='it''s'",
		"##########",
		"SELECT COUNT(*) FROM",
		"",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		res, err := Parse(d, sql)
		if err != nil {
			return
		}
		// Whatever parses must validate and render back to parseable SQL.
		if err := d.ValidateQuery(res.Query); err != nil {
			t.Fatalf("parsed query fails validation: %v (%q)", err, sql)
		}
		if _, err := Parse(d, res.Query.SQL(d)); err != nil {
			t.Fatalf("rendered SQL fails to re-parse: %v (%q)", err, sql)
		}
	})
}
