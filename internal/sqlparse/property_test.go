package sqlparse

import (
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/workload"
)

// TestRenderParseRoundTripGeneratedWorkload: every query the uniform
// generator can produce must render to SQL that parses back to an
// equivalent query (same signature). This closes the loop between the
// workload generator, the SQL renderer, and the parser over both schemas.
func TestRenderParseRoundTripGeneratedWorkload(t *testing.T) {
	imdb := datagen.IMDb(datagen.IMDbConfig{Seed: 77, Titles: 600, Keywords: 40, Companies: 20, Persons: 100})
	tpch := datagen.TPCH(datagen.TPCHConfig{Seed: 77, Orders: 400})

	t.Run("imdb", func(t *testing.T) {
		g, err := workload.NewGenerator(imdb, workload.GenConfig{Seed: 5, Count: 150, MaxJoins: 3, MaxPreds: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range g.Generate() {
			sql := q.SQL(imdb)
			res, err := Parse(imdb, sql)
			if err != nil {
				t.Fatalf("rendered SQL failed to parse: %v\n%s", err, sql)
			}
			if res.Query.Signature() != q.Signature() {
				t.Fatalf("round trip changed query:\n in: %s\nout: %s", q.Signature(), res.Query.Signature())
			}
		}
	})
	t.Run("tpch", func(t *testing.T) {
		g, err := workload.NewGenerator(tpch, workload.GenConfig{Seed: 6, Count: 150, MaxJoins: 3, MaxPreds: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range g.Generate() {
			sql := q.SQL(tpch)
			res, err := Parse(tpch, sql)
			if err != nil {
				t.Fatalf("rendered SQL failed to parse: %v\n%s", err, sql)
			}
			if res.Query.Signature() != q.Signature() {
				t.Fatalf("round trip changed query:\n in: %s\nout: %s", q.Signature(), res.Query.Signature())
			}
		}
	})
}

// TestJOBLightRoundTrip: the evaluation workload itself must round-trip.
func TestJOBLightRoundTrip(t *testing.T) {
	imdb := datagen.IMDb(datagen.IMDbConfig{Seed: 78, Titles: 800, Keywords: 40, Companies: 20, Persons: 100})
	qs, err := workload.JOBLight(imdb, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		res, err := Parse(imdb, q.SQL(imdb))
		if err != nil {
			t.Fatalf("JOB-light query failed round trip: %v\n%s", err, q.SQL(imdb))
		}
		if res.Query.Signature() != q.Signature() {
			t.Fatalf("JOB-light round trip changed query")
		}
	}
}
