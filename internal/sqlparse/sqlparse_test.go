package sqlparse

import (
	"strings"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
)

func parseDB(t *testing.T) *db.DB {
	t.Helper()
	return datagen.IMDb(datagen.IMDbConfig{Seed: 71, Titles: 500, Keywords: 40, Companies: 20, Persons: 100})
}

func TestParsePaperExampleQuery(t *testing.T) {
	d := parseDB(t)
	sql := `SELECT COUNT(*)
FROM title t, movie_keyword mk, keyword k
WHERE mk.movie_id=t.id AND mk.keyword_id=k.id
AND k.keyword='artificial-intelligence'
AND t.production_year=?`
	res, err := Parse(d, sql)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Query
	if len(q.Tables) != 3 || len(q.Joins) != 2 || len(q.Preds) != 1 {
		t.Fatalf("parsed shape %d/%d/%d", len(q.Tables), len(q.Joins), len(q.Preds))
	}
	if res.Placeholder == nil || res.Placeholder.Alias != "t" || res.Placeholder.Col != "production_year" {
		t.Fatalf("placeholder = %+v", res.Placeholder)
	}
	// String literal resolved to the dictionary code.
	kw := d.Table("keyword").Column("keyword")
	want, _ := kw.Lookup("artificial-intelligence")
	if q.Preds[0].Val != want {
		t.Errorf("keyword code = %d, want %d", q.Preds[0].Val, want)
	}
	tpl, err := res.Template()
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Alias != "t" || tpl.Col != "production_year" {
		t.Errorf("template = %+v", tpl)
	}
}

func TestParseSimple(t *testing.T) {
	d := parseDB(t)
	res, err := Parse(d, "SELECT COUNT(*) FROM title t WHERE t.production_year>2000 AND t.kind_id=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Query.Preds) != 2 || res.Placeholder != nil {
		t.Fatalf("parsed %+v", res)
	}
	if res.Query.Preds[0].Op != db.OpGt || res.Query.Preds[0].Val != 2000 {
		t.Errorf("pred 0 = %+v", res.Query.Preds[0])
	}
	// Executable.
	if _, err := d.Count(res.Query); err != nil {
		t.Fatal(err)
	}
}

func TestParseNoWhere(t *testing.T) {
	d := parseDB(t)
	res, err := Parse(d, "SELECT COUNT(*) FROM title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Tables[0].Alias != "title" {
		t.Error("bare table should alias to itself")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	d := parseDB(t)
	if _, err := Parse(d, "select count(*) from title t where t.kind_id=2"); err != nil {
		t.Fatal(err)
	}
}

func TestParseInclusiveOperators(t *testing.T) {
	d := parseDB(t)
	res, err := Parse(d, "SELECT COUNT(*) FROM title t WHERE t.production_year>=2000 AND t.kind_id<=3")
	if err != nil {
		t.Fatal(err)
	}
	// >= 2000 desugars to > 1999; <= 3 desugars to < 4.
	p0, p1 := res.Query.Preds[0], res.Query.Preds[1]
	if p0.Op != db.OpGt || p0.Val != 1999 {
		t.Errorf("pred 0 = %+v, want >1999", p0)
	}
	if p1.Op != db.OpLt || p1.Val != 4 {
		t.Errorf("pred 1 = %+v, want <4", p1)
	}
	// Semantics check against strict form.
	strict, err := Parse(d, "SELECT COUNT(*) FROM title t WHERE t.production_year>1999 AND t.kind_id<4")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Count(res.Query)
	b, _ := d.Count(strict.Query)
	if a != b {
		t.Errorf("inclusive desugar changed semantics: %d vs %d", a, b)
	}
	// Inclusive ops are invalid for joins, strings, placeholders.
	for _, sql := range []string{
		"SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id>=t.id",
		"SELECT COUNT(*) FROM keyword k WHERE k.keyword>='a'",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>=?",
	} {
		if _, err := Parse(d, sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	d := parseDB(t)
	res, err := Parse(d, "SELECT COUNT(*) FROM title t WHERE t.episode_nr>-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Preds[0].Val != -1 {
		t.Errorf("val = %d", res.Query.Preds[0].Val)
	}
}

func TestParseQuotedEscape(t *testing.T) {
	d := db.NewDB("x")
	d.MustAddTable(db.MustNewTable("s",
		db.NewIntColumn("id", []int64{1}),
		db.NewStringColumn("name", []int64{0}, []string{"o'brien"}),
	))
	res, err := Parse(d, "SELECT COUNT(*) FROM s WHERE s.name='o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Preds[0].Val != 0 {
		t.Errorf("val = %d", res.Query.Preds[0].Val)
	}
}

func TestParseRoundTripThroughSQL(t *testing.T) {
	// Parse -> render -> parse must be stable.
	d := parseDB(t)
	sql := "SELECT COUNT(*) FROM title t, movie_companies mc WHERE mc.movie_id=t.id AND mc.company_type_id=2 AND t.production_year<1980"
	res1, err := Parse(d, sql)
	if err != nil {
		t.Fatal(err)
	}
	rendered := res1.Query.SQL(d)
	res2, err := Parse(d, rendered)
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", rendered, err)
	}
	if res1.Query.Signature() != res2.Query.Signature() {
		t.Errorf("round trip changed query:\n%s\n%s", res1.Query.Signature(), res2.Query.Signature())
	}
}

func TestParseErrors(t *testing.T) {
	d := parseDB(t)
	cases := []string{
		"",
		"SELECT * FROM title",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM nope",
		"SELECT COUNT(*) FROM title t WHERE t.nope=1",
		"SELECT COUNT(*) FROM title t WHERE x.kind_id=1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id=1 OR t.kind_id=2",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id=1 AND",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id='movie'",           // string on int column
		"SELECT COUNT(*) FROM keyword k WHERE k.keyword='definitely-no'", // unknown dict value
		"SELECT COUNT(*) FROM keyword k WHERE k.keyword<'a'",             // range on string
		"SELECT COUNT(*) FROM title t WHERE t.production_year=? AND t.kind_id=?",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>?",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id=1 extra",
		"SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id<t.id", // non-eq join
		"SELECT COUNT(*) FROM title t WHERE t.kind_id='unterminated",
		"SELECT COUNT(*) FROM title t; DROP TABLE title",
		"SELECT COUNT(*) FROM title t, movie_keyword mk", // disconnected
	}
	for _, sql := range cases {
		if _, err := Parse(d, sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

// TestParseMalformedOperator pins the rejection path for comparison
// operators the grammar does not support: each must surface a parse
// error, never silently degrade to the zero Op (equality) and misread
// the predicate.
func TestParseMalformedOperator(t *testing.T) {
	d := parseDB(t)
	cases := []string{
		"SELECT COUNT(*) FROM title t WHERE t.kind_id != 1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id <> 1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id == 1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id LIKE 1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id 1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id =< 1",
	}
	for _, sql := range cases {
		if _, err := Parse(d, sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
	// Control: the well-formed operators still parse.
	for _, sql := range []string{
		"SELECT COUNT(*) FROM title t WHERE t.kind_id = 1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id < 2",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id > 0",
	} {
		if _, err := Parse(d, sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestResultTemplateWithoutPlaceholder(t *testing.T) {
	d := parseDB(t)
	res, _ := Parse(d, "SELECT COUNT(*) FROM title t")
	if _, err := res.Template(); err == nil {
		t.Error("Template() without placeholder should error")
	}
}

func TestParsedQueriesExecutable(t *testing.T) {
	d := parseDB(t)
	sqls := []string{
		"SELECT COUNT(*) FROM title t WHERE t.production_year>1990",
		"SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id=t.id AND ci.role_id=1",
		"SELECT COUNT(*) FROM company_name cn, movie_companies mc WHERE mc.company_id=cn.id AND cn.country_code='[us]'",
	}
	for _, sql := range sqls {
		res, err := Parse(d, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if _, err := d.Count(res.Query); err != nil {
			t.Fatalf("%s not executable: %v", sql, err)
		}
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	d := parseDB(t)
	if _, err := Parse(d, "SELECT COUNT(*) FROM title t WHERE t.kind_id=1 #"); err == nil ||
		!strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("err = %v", err)
	}
}
