// Package sqlparse parses the SQL dialect the demo accepts: COUNT(*)
// queries over comma-separated tables with a conjunctive WHERE clause of
// equi-joins and literal comparisons, plus the demo's `?` placeholder for
// template queries:
//
//	SELECT COUNT(*)
//	FROM title t, movie_keyword mk, keyword k
//	WHERE mk.movie_id=t.id AND mk.keyword_id=k.id
//	AND k.keyword='artificial-intelligence'
//	AND t.production_year=?
//
// String literals are resolved against the database dictionary; unquoted
// literals are integers. Keywords are case-insensitive; identifiers are
// case-sensitive like the schema.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"deepsketch/internal/db"
	"deepsketch/internal/workload"
)

// Placeholder identifies the `?` column of a template query.
type Placeholder struct {
	Alias string
	Col   string
}

// Result is a parsed statement: a concrete query, or a template when a
// placeholder was present (at most one placeholder is allowed, like the
// demo's UI).
type Result struct {
	Query       db.Query
	Placeholder *Placeholder
}

// Template converts a parsed placeholder statement into a workload.Template.
func (r Result) Template() (workload.Template, error) {
	if r.Placeholder == nil {
		return workload.Template{}, fmt.Errorf("sqlparse: statement has no placeholder")
	}
	return workload.Template{Base: r.Query, Alias: r.Placeholder.Alias, Col: r.Placeholder.Col}, nil
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . = < > * ?
)

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && isSpace(l.in[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.in[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.in) && l.in[l.pos] >= '0' && l.in[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokNumber, text: l.in[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.in) {
				return token{}, fmt.Errorf("sqlparse: unterminated string literal at %d", start)
			}
			if l.in[l.pos] == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.in[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '<' || c == '>':
		l.pos++
		// <= and >= desugar later; lex them as two-char symbols.
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
			return token{kind: tokSymbol, text: l.in[start:l.pos], pos: start}, nil
		}
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	case strings.ContainsRune("(),.*=?", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at %d", c, start)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

type parser struct {
	lex  *lexer
	tok  token
	d    *db.DB
	res  Result
	next func() (token, error)
}

// Parse parses one statement against the database schema. The schema is
// needed to resolve string literals to dictionary codes and to validate
// table/column references; the returned query passes db.ValidateQuery.
func Parse(d *db.DB, sql string) (Result, error) {
	p := &parser{lex: &lexer{in: sql}, d: d}
	if err := p.advance(); err != nil {
		return Result{}, err
	}
	if err := p.parseSelectCount(); err != nil {
		return Result{}, err
	}
	if err := p.parseFrom(); err != nil {
		return Result{}, err
	}
	if err := p.parseWhere(); err != nil {
		return Result{}, err
	}
	if p.tok.kind != tokEOF {
		return Result{}, fmt.Errorf("sqlparse: trailing input at %d: %q", p.tok.pos, p.tok.text)
	}
	if err := d.ValidateQuery(p.res.Query); err != nil {
		return Result{}, err
	}
	return p.res, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || !strings.EqualFold(p.tok.text, kw) {
		return fmt.Errorf("sqlparse: expected %s at %d, got %q", strings.ToUpper(kw), p.tok.pos, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectSymbol(s string) error {
	if p.tok.kind != tokSymbol || p.tok.text != s {
		return fmt.Errorf("sqlparse: expected %q at %d, got %q", s, p.tok.pos, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseSelectCount() error {
	if err := p.expectKeyword("select"); err != nil {
		return err
	}
	if err := p.expectKeyword("count"); err != nil {
		return err
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if err := p.expectSymbol("*"); err != nil {
		return err
	}
	return p.expectSymbol(")")
}

func (p *parser) parseFrom() error {
	if err := p.expectKeyword("from"); err != nil {
		return err
	}
	for {
		if p.tok.kind != tokIdent {
			return fmt.Errorf("sqlparse: expected table name at %d", p.tok.pos)
		}
		table := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		alias := table
		if p.tok.kind == tokIdent && !strings.EqualFold(p.tok.text, "where") {
			alias = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		}
		p.res.Query.Tables = append(p.res.Query.Tables, db.TableRef{Table: table, Alias: alias})
		if p.tok.kind == tokSymbol && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

func (p *parser) parseWhere() error {
	if p.tok.kind == tokEOF {
		return nil
	}
	if err := p.expectKeyword("where"); err != nil {
		return err
	}
	for {
		if err := p.parseCondition(); err != nil {
			return err
		}
		if p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "and") {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

// parseColumnRef parses alias.column.
func (p *parser) parseColumnRef() (alias, col string, err error) {
	if p.tok.kind != tokIdent {
		return "", "", fmt.Errorf("sqlparse: expected column reference at %d", p.tok.pos)
	}
	alias = p.tok.text
	if err := p.advance(); err != nil {
		return "", "", err
	}
	if err := p.expectSymbol("."); err != nil {
		return "", "", err
	}
	if p.tok.kind != tokIdent {
		return "", "", fmt.Errorf("sqlparse: expected column name at %d", p.tok.pos)
	}
	col = p.tok.text
	err = p.advance()
	return alias, col, err
}

func (p *parser) parseCondition() error {
	alias, col, err := p.parseColumnRef()
	if err != nil {
		return err
	}
	opText := p.tok.text
	validOp := p.tok.kind == tokSymbol &&
		(opText == "=" || opText == "<" || opText == ">" || opText == "<=" || opText == ">=")
	if !validOp {
		return fmt.Errorf("sqlparse: expected operator at %d, got %q", p.tok.pos, p.tok.text)
	}
	// <= and >= desugar to the paper's strict operators on integer
	// literals: c <= v  ≡  c < v+1 and c >= v  ≡  c > v−1. They are only
	// valid before an integer literal (not joins, strings, placeholders).
	var inclusiveDelta int64
	var op db.Op
	switch opText {
	case "<=":
		op, inclusiveDelta = db.OpLt, 1
	case ">=":
		op, inclusiveDelta = db.OpGt, -1
	default:
		// validOp pre-screened the token, but that screen and ParseOp must
		// not be allowed to drift apart: a symbol accepted here and unknown
		// there would otherwise silently parse as the zero Op (equality) and
		// misread the predicate.
		op, err = db.ParseOp(opText)
		if err != nil {
			return fmt.Errorf("sqlparse: unsupported operator %q at %d: %v", opText, p.tok.pos, err)
		}
	}
	if err := p.advance(); err != nil {
		return err
	}
	if inclusiveDelta != 0 && p.tok.kind != tokNumber {
		return fmt.Errorf("sqlparse: %s requires an integer literal", opText)
	}

	switch p.tok.kind {
	case tokIdent:
		// Join predicate: alias2.col2.
		a2, c2, err := p.parseColumnRef2(p.tok.text)
		if err != nil {
			return err
		}
		if op != db.OpEq {
			return fmt.Errorf("sqlparse: joins must use equality")
		}
		p.res.Query.Joins = append(p.res.Query.Joins, db.JoinPred{
			LeftAlias: alias, LeftCol: col, RightAlias: a2, RightCol: c2,
		})
		return nil
	case tokNumber:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return fmt.Errorf("sqlparse: bad integer literal %q: %v", p.tok.text, err)
		}
		p.res.Query.Preds = append(p.res.Query.Preds, db.Predicate{Alias: alias, Col: col, Op: op, Val: v + inclusiveDelta})
		return p.advance()
	case tokString:
		v, err := p.resolveString(alias, col, p.tok.text)
		if err != nil {
			return err
		}
		if op != db.OpEq {
			return fmt.Errorf("sqlparse: string literals support only equality")
		}
		p.res.Query.Preds = append(p.res.Query.Preds, db.Predicate{Alias: alias, Col: col, Op: op, Val: v})
		return p.advance()
	case tokSymbol:
		if p.tok.text == "?" {
			if p.res.Placeholder != nil {
				return fmt.Errorf("sqlparse: multiple placeholders unsupported")
			}
			if op != db.OpEq {
				return fmt.Errorf("sqlparse: placeholder supports only equality")
			}
			p.res.Placeholder = &Placeholder{Alias: alias, Col: col}
			return p.advance()
		}
	}
	return fmt.Errorf("sqlparse: expected literal, column, or ? at %d", p.tok.pos)
}

// parseColumnRef2 finishes a column reference whose alias token is current.
func (p *parser) parseColumnRef2(alias string) (string, string, error) {
	if err := p.advance(); err != nil {
		return "", "", err
	}
	if err := p.expectSymbol("."); err != nil {
		return "", "", err
	}
	if p.tok.kind != tokIdent {
		return "", "", fmt.Errorf("sqlparse: expected column name at %d", p.tok.pos)
	}
	col := p.tok.text
	if err := p.advance(); err != nil {
		return "", "", err
	}
	return alias, col, nil
}

// resolveString maps a string literal to its dictionary code.
func (p *parser) resolveString(alias, col, lit string) (int64, error) {
	var table string
	for _, tr := range p.res.Query.Tables {
		if tr.Alias == alias {
			table = tr.Table
			break
		}
	}
	if table == "" {
		return 0, fmt.Errorf("sqlparse: unknown alias %s", alias)
	}
	t := p.d.Table(table)
	if t == nil {
		return 0, fmt.Errorf("sqlparse: unknown table %s", table)
	}
	c := t.Column(col)
	if c == nil {
		return 0, fmt.Errorf("sqlparse: unknown column %s.%s", table, col)
	}
	if c.Type != db.ColString {
		return 0, fmt.Errorf("sqlparse: column %s.%s is not a string column", table, col)
	}
	v, ok := c.Lookup(lit)
	if !ok {
		return 0, fmt.Errorf("sqlparse: value %q not present in %s.%s", lit, table, col)
	}
	return v, nil
}
