// Package sample implements the materialized base-table samples that ship
// inside every Deep Sketch. The paper executes each training query's
// base-table selections "against a set of materialized samples (e.g., 1000
// tuples per base table)", deriving per-table bitmaps of qualifying sample
// tuples that become additional model inputs; at estimation time the same
// samples produce the bitmaps for unseen queries, and template queries draw
// their placeholder literals from them.
package sample

import (
	"fmt"
	"math/bits"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
)

// TableSample is a uniform random sample of one table, stored column-wise
// like the base table so predicate evaluation reuses the db machinery.
type TableSample struct {
	Table string
	// Rows is the number of sampled tuples (min(sample size, table rows)).
	Rows int
	// Data holds the sampled tuples as a db.Table (same columns as source).
	Data *db.Table
	// SourceRows is the row count of the sampled table, needed to scale
	// sample selectivities back to cardinalities.
	SourceRows int
}

// Set is the collection of per-table samples belonging to one sketch.
type Set struct {
	// Size is the configured tuples-per-table budget.
	Size    int
	Samples map[string]*TableSample
}

// New draws a seeded uniform sample of up to size tuples from every listed
// table (all tables when names is nil). Sampling is without replacement via
// a partial Fisher-Yates shuffle of row indices, so it is deterministic in
// (seed, size, table order).
func New(d *db.DB, names []string, size int, seed int64) (*Set, error) {
	if size <= 0 {
		return nil, fmt.Errorf("sample: size must be positive, got %d", size)
	}
	if names == nil {
		names = d.TableNames()
	}
	set := &Set{Size: size, Samples: make(map[string]*TableSample, len(names))}
	for _, name := range names {
		t := d.Table(name)
		if t == nil {
			return nil, fmt.Errorf("sample: unknown table %s", name)
		}
		set.Samples[name] = sampleTable(t, size, seed)
	}
	return set, nil
}

func sampleTable(t *db.Table, size int, seed int64) *TableSample {
	n := t.NumRows()
	k := size
	if k > n {
		k = n
	}
	rng := datagen.NewRand(seed ^ int64(len(t.Name))<<32 ^ hashName(t.Name))
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	// Partial Fisher-Yates: only the first k positions are needed.
	for i := 0; i < k; i++ {
		j := i + int(rng.Int63n(int64(n-i)))
		idx[i], idx[j] = idx[j], idx[i]
	}
	idx = idx[:k]

	cols := make([]*db.Column, len(t.Cols))
	for ci, c := range t.Cols {
		vals := make([]int64, k)
		for ri, r := range idx {
			vals[ri] = c.Vals[r]
		}
		if c.Type == db.ColString {
			cols[ci] = db.NewStringColumn(c.Name, vals, c.Dict)
		} else {
			cols[ci] = db.NewIntColumn(c.Name, vals)
		}
	}
	return &TableSample{
		Table:      t.Name,
		Rows:       k,
		Data:       db.MustNewTable(t.Name, cols...),
		SourceRows: n,
	}
}

func hashName(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h >> 1)
}

// For returns the sample of one table, or nil.
func (s *Set) For(table string) *TableSample {
	if s == nil {
		return nil
	}
	return s.Samples[table]
}

// Bitmap is a packed bitset over the sampled tuples of one table: bit i set
// means sample tuple i satisfies the query's predicates on that table.
type Bitmap struct {
	Bits []uint64
	N    int // number of valid bits
}

// NewBitmap returns an all-zero bitmap of n bits.
func NewBitmap(n int) Bitmap {
	return Bitmap{Bits: make([]uint64, (n+63)/64), N: n}
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b.Bits[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b.Bits[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	var c int
	for _, w := range b.Bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Fraction returns set bits over valid bits (the sample selectivity); it is
// 0 for an empty bitmap.
func (b Bitmap) Fraction() float64 {
	if b.N == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.N)
}

// QualifyingBitmap evaluates a conjunction of predicates against the sample
// of one table and returns the bitmap of qualifying tuples. With no
// predicates every sampled tuple qualifies (the paper feeds all-ones bitmaps
// for unfiltered tables).
func (ts *TableSample) QualifyingBitmap(preds []db.Predicate) (Bitmap, error) {
	b := NewBitmap(ts.Rows)
	rows, all, err := db.FilterTable(ts.Data, preds)
	if err != nil {
		return Bitmap{}, err
	}
	if all {
		for i := 0; i < ts.Rows; i++ {
			b.Set(i)
		}
		return b, nil
	}
	for _, r := range rows {
		b.Set(int(r))
	}
	return b, nil
}

// Bitmaps computes the qualifying bitmap for every table referenced by the
// query, keyed by alias. Tables without a sample yield an error: a sketch
// can only estimate queries over the tables it was built on.
func (s *Set) Bitmaps(q db.Query) (map[string]Bitmap, error) {
	out := make(map[string]Bitmap, len(q.Tables))
	for _, tr := range q.Tables {
		ts := s.For(tr.Table)
		if ts == nil {
			return nil, fmt.Errorf("sample: no sample for table %s", tr.Table)
		}
		b, err := ts.QualifyingBitmap(q.PredsFor(tr.Alias))
		if err != nil {
			return nil, err
		}
		out[tr.Alias] = b
	}
	return out, nil
}

// DistinctValues returns the distinct values of one sampled column in first-
// appearance order. Template instantiation draws placeholder literals from
// this list ("we draw a value from the column sample that is part of the
// sketch").
func (ts *TableSample) DistinctValues(column string) ([]int64, error) {
	c := ts.Data.Column(column)
	if c == nil {
		return nil, fmt.Errorf("sample: table %s has no column %s", ts.Table, column)
	}
	seen := make(map[int64]bool)
	var out []int64
	for _, v := range c.Vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// MinMax returns the min and max of one sampled column (used for the demo's
// equi-width bucket grouping). ok is false for an empty sample.
func (ts *TableSample) MinMax(column string) (lo, hi int64, ok bool) {
	c := ts.Data.Column(column)
	if c == nil || len(c.Vals) == 0 {
		return 0, 0, false
	}
	return c.Min, c.Max, true
}
