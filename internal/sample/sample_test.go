package sample

import (
	"testing"
	"testing/quick"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
)

func sampleDB(t *testing.T) *db.DB {
	t.Helper()
	return datagen.IMDb(datagen.IMDbConfig{Seed: 3, Titles: 1500, Keywords: 80, Companies: 40, Persons: 300})
}

func TestNewSampleSizes(t *testing.T) {
	d := sampleDB(t)
	s, err := New(d, nil, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range d.TableNames() {
		ts := s.For(name)
		if ts == nil {
			t.Fatalf("missing sample for %s", name)
		}
		want := 100
		if n := d.Table(name).NumRows(); n < want {
			want = n
		}
		if ts.Rows != want {
			t.Errorf("sample %s rows = %d, want %d", name, ts.Rows, want)
		}
		if ts.SourceRows != d.Table(name).NumRows() {
			t.Errorf("sample %s source rows mismatch", name)
		}
	}
	if _, err := New(d, []string{"nope"}, 10, 0); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := New(d, nil, 0, 0); err == nil {
		t.Error("zero sample size should error")
	}
}

func TestSampleDeterminism(t *testing.T) {
	d := sampleDB(t)
	a, _ := New(d, []string{"title"}, 50, 11)
	b, _ := New(d, []string{"title"}, 50, 11)
	ca := a.For("title").Data.Column("id").Vals
	cb := b.For("title").Data.Column("id").Vals
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c, _ := New(d, []string{"title"}, 50, 12)
	cc := c.For("title").Data.Column("id").Vals
	same := true
	for i := range ca {
		if ca[i] != cc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	d := sampleDB(t)
	s, _ := New(d, []string{"title"}, 400, 5)
	ids := s.For("title").Data.Column("id").Vals
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate sampled row id %d", id)
		}
		seen[id] = true
	}
}

func TestBitmapOps(t *testing.T) {
	b := NewBitmap(130)
	if b.Count() != 0 {
		t.Error("fresh bitmap should be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Get/Set mismatch")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	if f := b.Fraction(); f != 3.0/130 {
		t.Errorf("Fraction = %v", f)
	}
	if (Bitmap{}).Fraction() != 0 {
		t.Error("empty bitmap fraction should be 0")
	}
}

func TestBitmapSetGetProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBitmap(1024)
		ref := make(map[int]bool)
		for _, v := range raw {
			i := int(v) % 1024
			b.Set(i)
			ref[i] = true
		}
		for i := 0; i < 1024; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		return b.Count() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQualifyingBitmap(t *testing.T) {
	d := sampleDB(t)
	s, _ := New(d, []string{"title"}, 200, 3)
	ts := s.For("title")

	all, err := ts.QualifyingBitmap(nil)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != ts.Rows {
		t.Errorf("no-predicate bitmap should be all ones: %d/%d", all.Count(), ts.Rows)
	}

	b, err := ts.QualifyingBitmap([]db.Predicate{{Col: "production_year", Op: db.OpGt, Val: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against direct evaluation.
	years := ts.Data.Column("production_year").Vals
	for i, y := range years {
		if b.Get(i) != (y > 2000) {
			t.Fatalf("bit %d mismatch: year=%d bit=%v", i, y, b.Get(i))
		}
	}

	if _, err := ts.QualifyingBitmap([]db.Predicate{{Col: "nope", Op: db.OpEq, Val: 1}}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestBitmapFractionApproximatesSelectivity(t *testing.T) {
	// Sample selectivity should approximate true selectivity for a common
	// predicate — the statistical foundation the paper's approach builds on.
	d := sampleDB(t)
	s, _ := New(d, []string{"title"}, 800, 9)
	preds := []db.Predicate{{Col: "production_year", Op: db.OpGt, Val: 1990}}
	trueCount, err := db.CountRows(d.Table("title"), preds)
	if err != nil {
		t.Fatal(err)
	}
	trueSel := float64(trueCount) / float64(d.Table("title").NumRows())
	b, _ := s.For("title").QualifyingBitmap(preds)
	if diff := b.Fraction() - trueSel; diff > 0.08 || diff < -0.08 {
		t.Errorf("sample selectivity %v too far from true %v", b.Fraction(), trueSel)
	}
}

func TestSetBitmaps(t *testing.T) {
	d := sampleDB(t)
	s, _ := New(d, nil, 100, 1)
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "movie_keyword", Alias: "mk"}},
		Joins:  []db.JoinPred{{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpLt, Val: 1950}},
	}
	bms, err := s.Bitmaps(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bms) != 2 {
		t.Fatalf("want 2 bitmaps, got %d", len(bms))
	}
	if bms["mk"].Count() != s.For("movie_keyword").Rows {
		t.Error("unfiltered table should have all-ones bitmap")
	}
	if bms["t"].Count() >= s.For("title").Rows {
		t.Error("filtered title bitmap should not be all ones")
	}

	q2 := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	s2, _ := New(d, []string{"movie_keyword"}, 10, 0)
	if _, err := s2.Bitmaps(q2); err == nil {
		t.Error("missing sample should error")
	}
}

func TestDistinctValuesAndMinMax(t *testing.T) {
	d := sampleDB(t)
	s, _ := New(d, []string{"title"}, 300, 2)
	ts := s.For("title")
	vals, err := ts.DistinctValues("kind_id")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate distinct value %d", v)
		}
		seen[v] = true
	}
	if len(vals) < 2 {
		t.Errorf("expected several kinds in sample, got %v", vals)
	}
	lo, hi, ok := ts.MinMax("production_year")
	if !ok || lo > hi {
		t.Errorf("MinMax = %d,%d,%v", lo, hi, ok)
	}
	if _, err := ts.DistinctValues("nope"); err == nil {
		t.Error("unknown column should error")
	}
	if _, _, ok := ts.MinMax("nope"); ok {
		t.Error("unknown column MinMax should fail")
	}
}
