package featurize

import (
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/sample"
)

// TestEncoderOnTPCH: the encoder is schema-agnostic; exercise it end to end
// on the second schema.
func TestEncoderOnTPCH(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 9, Orders: 400})
	s, err := sample.New(d, nil, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEncoder(d, nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tables) != 6 {
		t.Errorf("tables = %v", e.Tables)
	}
	if len(e.Joins) != 5 {
		t.Errorf("joins = %v", e.Joins)
	}
	q := db.Query{
		Tables: []db.TableRef{
			{Table: "orders", Alias: "o"},
			{Table: "lineitem", Alias: "l"},
			{Table: "customer", Alias: "c"},
		},
		Joins: []db.JoinPred{
			{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"},
			{LeftAlias: "o", LeftCol: "cust_id", RightAlias: "c", RightCol: "id"},
		},
		Preds: []db.Predicate{
			{Alias: "l", Col: "quantity", Op: db.OpGt, Val: 25},
			{Alias: "c", Col: "mktsegment", Op: db.OpEq, Val: 0},
		},
	}
	bms, err := s.Bitmaps(q)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := e.EncodeQuery(q, bms)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.TableVecs) != 3 || len(enc.JoinVecs) != 2 || len(enc.PredVecs) != 2 {
		t.Fatalf("set sizes %d/%d/%d", len(enc.TableVecs), len(enc.JoinVecs), len(enc.PredVecs))
	}
	// Each join vector one-hot, distinct slots.
	slot := func(v []float64) int {
		for i, x := range v {
			if x == 1 {
				return i
			}
		}
		return -1
	}
	if slot(enc.JoinVecs[0]) == slot(enc.JoinVecs[1]) {
		t.Error("distinct joins mapped to the same one-hot slot")
	}
}

// TestEncoderSubsetSmallerDims: encoders over subsets have proportionally
// smaller one-hot spaces — the footprint the demo's table selection buys.
func TestEncoderSubsetSmallerDims(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 9, Orders: 300})
	full, err := NewEncoder(d, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewEncoder(d, []string{"orders", "lineitem"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sub.PredDim() >= full.PredDim() {
		t.Errorf("subset pred dim %d should be < full %d", sub.PredDim(), full.PredDim())
	}
	if len(sub.Joins) != 1 {
		t.Errorf("subset joins = %v", sub.Joins)
	}
}
