// Package featurize turns queries into the MSCN model's three input sets,
// following the paper's featurization exactly: "we enumerate tables,
// columns, joins, and predicate types (=, <, and >) and represent them as
// unique one-hot vectors. We represent each literal in a query as a value
// val (val ∈ [0, 1]), normalized using the minimum and maximum values of the
// respective column." Table elements additionally carry the bitmap of
// qualifying materialized-sample tuples.
package featurize

import (
	"encoding/json"
	"fmt"
	"sort"

	"deepsketch/internal/db"
	"deepsketch/internal/nn"
	"deepsketch/internal/sample"
)

// Encoder maps queries over a fixed table set to feature vectors. Its
// vocabulary is derived from the schema (not from observed training
// queries), so any valid query over the sketch's tables can be encoded. The
// encoder is part of the serialized sketch.
type Encoder struct {
	// Tables is the sketch's table set, sorted; index = one-hot position.
	Tables []string `json:"tables"`
	// Joins enumerates the possible FK joins within the table set in
	// canonical "table.col=table.col" form, sorted.
	Joins []string `json:"joins"`
	// Columns enumerates predicate-eligible columns as "table.column",
	// sorted.
	Columns []string `json:"columns"`
	// SampleSize is the bitmap width (tuples per base-table sample).
	SampleSize int `json:"sample_size"`
	// ColMin and ColMax hold per-column literal normalization bounds taken
	// from the data, keyed like Columns.
	ColMin map[string]float64 `json:"col_min"`
	ColMax map[string]float64 `json:"col_max"`
	// Norm is the label normalization fitted on training cardinalities.
	Norm nn.LabelNorm `json:"label_norm"`

	tableIdx map[string]int
	joinIdx  map[string]int
	colIdx   map[string]int
}

// NewEncoder builds an encoder for a sketch over the given tables of d.
// tables nil means all tables. sampleSize 0 disables bitmap features
// entirely (the "no runtime sampling" ablation); real sketches always use a
// positive size.
func NewEncoder(d *db.DB, tables []string, sampleSize int) (*Encoder, error) {
	if sampleSize < 0 {
		return nil, fmt.Errorf("featurize: sample size must be non-negative, got %d", sampleSize)
	}
	if tables == nil {
		tables = d.TableNames()
	}
	e := &Encoder{SampleSize: sampleSize, ColMin: map[string]float64{}, ColMax: map[string]float64{}}
	inSet := map[string]bool{}
	for _, t := range tables {
		if d.Table(t) == nil {
			return nil, fmt.Errorf("featurize: unknown table %s", t)
		}
		if inSet[t] {
			return nil, fmt.Errorf("featurize: duplicate table %s", t)
		}
		inSet[t] = true
		e.Tables = append(e.Tables, t)
	}
	sort.Strings(e.Tables)

	for _, fk := range d.FKs {
		if inSet[fk.Table] && inSet[fk.RefTable] {
			e.Joins = append(e.Joins, canonicalJoin(fk.Table, fk.Column, fk.RefTable, fk.RefColumn))
		}
	}
	sort.Strings(e.Joins)

	for _, pc := range d.PredCols {
		if !inSet[pc.Table] {
			continue
		}
		key := pc.Table + "." + pc.Column
		e.Columns = append(e.Columns, key)
		col := d.Table(pc.Table).Column(pc.Column)
		if col.Min <= col.Max {
			e.ColMin[key] = float64(col.Min)
			e.ColMax[key] = float64(col.Max)
		} else { // empty column
			e.ColMin[key] = 0
			e.ColMax[key] = 1
		}
	}
	sort.Strings(e.Columns)

	e.Norm = nn.LabelNorm{MinLog: 0, MaxLog: 1} // refitted by FitLabels
	e.rebuild()
	return e, nil
}

func canonicalJoin(t1, c1, t2, c2 string) string {
	a := t1 + "." + c1
	b := t2 + "." + c2
	if a <= b {
		return a + "=" + b
	}
	return b + "=" + a
}

func (e *Encoder) rebuild() {
	e.tableIdx = make(map[string]int, len(e.Tables))
	for i, t := range e.Tables {
		e.tableIdx[t] = i
	}
	e.joinIdx = make(map[string]int, len(e.Joins))
	for i, j := range e.Joins {
		e.joinIdx[j] = i
	}
	e.colIdx = make(map[string]int, len(e.Columns))
	for i, c := range e.Columns {
		e.colIdx[c] = i
	}
}

// UnmarshalJSON restores the encoder and its lookup tables.
func (e *Encoder) UnmarshalJSON(data []byte) error {
	type plain Encoder
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*e = Encoder(p)
	e.rebuild()
	return nil
}

// FitLabels fits the label normalization to training cardinalities.
func (e *Encoder) FitLabels(cards []int64) {
	e.Norm = nn.NewLabelNorm(cards)
}

// TableDim is the width of a table-set element: table one-hot plus the
// sample bitmap.
func (e *Encoder) TableDim() int { return len(e.Tables) + e.SampleSize }

// JoinDim is the width of a join-set element (≥ 1 so empty join sets can be
// padded with a zero vector).
func (e *Encoder) JoinDim() int {
	if len(e.Joins) == 0 {
		return 1
	}
	return len(e.Joins)
}

// PredDim is the width of a predicate-set element: column one-hot, operator
// one-hot, normalized literal.
func (e *Encoder) PredDim() int { return len(e.Columns) + db.NumOps + 1 }

// Encoded is a featurized query: variable-length sets of element vectors.
// Empty join/predicate sets are represented by a single zero vector so that
// the set modules always see at least one element.
type Encoded struct {
	TableVecs [][]float64
	JoinVecs  [][]float64
	PredVecs  [][]float64
}

// RowCounts returns the number of feature rows EncodeQuery/EncodeQueryTo
// emit per set for q: one per table, and one per join/predicate with a
// minimum of one (empty sets are represented by a single zero row).
func (e *Encoder) RowCounts(q db.Query) (t, j, p int) {
	t = len(q.Tables)
	j = len(q.Joins)
	if j == 0 {
		j = 1
	}
	p = len(q.Preds)
	if p == 0 {
		p = 1
	}
	return t, j, p
}

// EncodeQuery featurizes a query given its per-alias sample bitmaps (as
// produced by sample.Set.Bitmaps). A missing bitmap is an error unless the
// encoder was built with SampleSize 0 (bitmap ablation), in which case
// bitmaps are ignored entirely.
func (e *Encoder) EncodeQuery(q db.Query, bitmaps map[string]sample.Bitmap) (Encoded, error) {
	nt, nj, np := e.RowCounts(q)
	enc := Encoded{
		TableVecs: make([][]float64, 0, nt),
		JoinVecs:  make([][]float64, 0, nj),
		PredVecs:  make([][]float64, 0, np),
	}
	nextT := func() []float64 {
		v := make([]float64, e.TableDim())
		enc.TableVecs = append(enc.TableVecs, v)
		return v
	}
	nextJ := func() []float64 {
		v := make([]float64, e.JoinDim())
		enc.JoinVecs = append(enc.JoinVecs, v)
		return v
	}
	nextP := func() []float64 {
		v := make([]float64, e.PredDim())
		enc.PredVecs = append(enc.PredVecs, v)
		return v
	}
	if err := e.EncodeQueryTo(q, bitmaps, nextT, nextJ, nextP); err != nil {
		return Encoded{}, err
	}
	return enc, nil
}

// EncodeQueryTo featurizes a query directly into caller-provided rows: each
// next function must return the next *zeroed* destination row for its set
// (width TableDim/JoinDim/PredDim); exactly the counts reported by RowCounts
// are consumed, in order. This is the packed inference engine's path — it
// featurizes straight into a PackedBatch with no intermediate per-query
// vector allocations. On error some rows may already have been consumed.
func (e *Encoder) EncodeQueryTo(q db.Query, bitmaps map[string]sample.Bitmap, nextT, nextJ, nextP func() []float64) error {
	// Queries reference at most a handful of tables: RefByAlias's linear
	// scan beats building a map and allocates nothing.
	tableOf := func(alias string) (string, bool) {
		tr, ok := q.RefByAlias(alias)
		return tr.Table, ok
	}

	for _, tr := range q.Tables {
		ti, ok := e.tableIdx[tr.Table]
		if !ok {
			return fmt.Errorf("featurize: table %s not in sketch vocabulary", tr.Table)
		}
		vec := nextT()
		vec[ti] = 1
		if e.SampleSize > 0 {
			bm, ok := bitmaps[tr.Alias]
			if !ok {
				return fmt.Errorf("featurize: missing bitmap for alias %s", tr.Alias)
			}
			n := bm.N
			if n > e.SampleSize {
				n = e.SampleSize
			}
			for i := 0; i < n; i++ {
				if bm.Get(i) {
					vec[len(e.Tables)+i] = 1
				}
			}
		}
	}

	for _, j := range q.Joins {
		lt, ok := tableOf(j.LeftAlias)
		if !ok {
			return fmt.Errorf("featurize: join references unknown alias %s", j.LeftAlias)
		}
		rt, ok := tableOf(j.RightAlias)
		if !ok {
			return fmt.Errorf("featurize: join references unknown alias %s", j.RightAlias)
		}
		key := canonicalJoin(lt, j.LeftCol, rt, j.RightCol)
		ji, ok := e.joinIdx[key]
		if !ok {
			return fmt.Errorf("featurize: join %s not in sketch vocabulary", key)
		}
		nextJ()[ji] = 1
	}
	if len(q.Joins) == 0 {
		nextJ() // empty set: one zero row
	}

	for _, p := range q.Preds {
		tbl, ok := tableOf(p.Alias)
		if !ok {
			return fmt.Errorf("featurize: predicate references unknown alias %s", p.Alias)
		}
		key := tbl + "." + p.Col
		ci, ok := e.colIdx[key]
		if !ok {
			return fmt.Errorf("featurize: column %s not in sketch vocabulary", key)
		}
		vec := nextP()
		vec[ci] = 1
		vec[len(e.Columns)+int(p.Op)] = 1
		vec[len(e.Columns)+db.NumOps] = e.normalizeLiteral(key, p.Val)
	}
	if len(q.Preds) == 0 {
		nextP() // empty set: one zero row
	}
	return nil
}

func (e *Encoder) normalizeLiteral(colKey string, val int64) float64 {
	lo, hi := e.ColMin[colKey], e.ColMax[colKey]
	if hi <= lo {
		return 0
	}
	v := (float64(val) - lo) / (hi - lo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
