package featurize

import (
	"encoding/json"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/sample"
)

func featDB(t *testing.T) (*db.DB, *sample.Set) {
	t.Helper()
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 31, Titles: 600, Keywords: 50, Companies: 25, Persons: 100})
	s, err := sample.New(d, nil, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestNewEncoderVocabulary(t *testing.T) {
	d, _ := featDB(t)
	e, err := NewEncoder(d, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tables) != 8 {
		t.Errorf("tables = %v", e.Tables)
	}
	if len(e.Joins) != 7 { // 5 movie_id joins + keyword + company
		t.Errorf("joins = %v", e.Joins)
	}
	if len(e.Columns) != 13 {
		t.Errorf("columns = %v", e.Columns)
	}
	if e.TableDim() != 8+64 {
		t.Errorf("TableDim = %d", e.TableDim())
	}
	if e.JoinDim() != 7 {
		t.Errorf("JoinDim = %d", e.JoinDim())
	}
	if e.PredDim() != 13+3+1 {
		t.Errorf("PredDim = %d", e.PredDim())
	}
	// Bounds present for every column.
	for _, c := range e.Columns {
		if _, ok := e.ColMin[c]; !ok {
			t.Errorf("missing min bound for %s", c)
		}
	}
}

func TestNewEncoderErrors(t *testing.T) {
	d, _ := featDB(t)
	if _, err := NewEncoder(d, []string{"nope"}, 10); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := NewEncoder(d, nil, -1); err == nil {
		t.Error("negative sample size should error")
	}
	if _, err := NewEncoder(d, []string{"title", "title"}, 10); err == nil {
		t.Error("duplicate table should error")
	}
}

func TestEncodeQueryShapes(t *testing.T) {
	d, s := featDB(t)
	e, _ := NewEncoder(d, nil, 64)
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "movie_keyword", Alias: "mk"}},
		Joins:  []db.JoinPred{{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 2000}},
	}
	bms, err := s.Bitmaps(q)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := e.EncodeQuery(q, bms)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.TableVecs) != 2 || len(enc.JoinVecs) != 1 || len(enc.PredVecs) != 1 {
		t.Fatalf("set sizes = %d/%d/%d", len(enc.TableVecs), len(enc.JoinVecs), len(enc.PredVecs))
	}
	for _, v := range enc.TableVecs {
		if len(v) != e.TableDim() {
			t.Fatal("table vec width wrong")
		}
		// Exactly one table one-hot bit.
		ones := 0
		for i := 0; i < len(e.Tables); i++ {
			if v[i] == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("table one-hot has %d bits", ones)
		}
	}
	// Join vector has exactly one bit.
	ones := 0
	for _, v := range enc.JoinVecs[0] {
		if v == 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("join one-hot has %d bits", ones)
	}
	// Predicate vector: one column bit, one op bit, literal in [0,1].
	pv := enc.PredVecs[0]
	lit := pv[len(pv)-1]
	if lit < 0 || lit > 1 {
		t.Errorf("literal %v out of [0,1]", lit)
	}
	opOff := len(e.Columns)
	if pv[opOff+int(db.OpGt)] != 1 {
		t.Error("op one-hot missing")
	}
}

func TestEncodeQueryBitmapMatchesSample(t *testing.T) {
	d, s := featDB(t)
	e, _ := NewEncoder(d, nil, 64)
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpLt, Val: 1950}},
	}
	bms, _ := s.Bitmaps(q)
	enc, err := e.EncodeQuery(q, bms)
	if err != nil {
		t.Fatal(err)
	}
	vec := enc.TableVecs[0]
	bm := bms["t"]
	for i := 0; i < bm.N; i++ {
		want := 0.0
		if bm.Get(i) {
			want = 1
		}
		if vec[len(e.Tables)+i] != want {
			t.Fatalf("bitmap bit %d mismatch", i)
		}
	}
}

func TestEncodeEmptySetsPadded(t *testing.T) {
	d, s := featDB(t)
	e, _ := NewEncoder(d, nil, 64)
	q := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	bms, _ := s.Bitmaps(q)
	enc, err := e.EncodeQuery(q, bms)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.JoinVecs) != 1 || len(enc.PredVecs) != 1 {
		t.Fatal("empty sets must be padded with one element")
	}
	for _, v := range enc.JoinVecs[0] {
		if v != 0 {
			t.Error("empty join pad must be zero vector")
		}
	}
	for _, v := range enc.PredVecs[0] {
		if v != 0 {
			t.Error("empty pred pad must be zero vector")
		}
	}
}

func TestEncodeQueryErrors(t *testing.T) {
	d, s := featDB(t)
	e, _ := NewEncoder(d, []string{"title", "movie_keyword", "keyword"}, 64)
	// Table outside vocabulary.
	q := db.Query{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}}
	bms, _ := s.Bitmaps(q)
	if _, err := e.EncodeQuery(q, bms); err == nil {
		t.Error("out-of-vocabulary table should error")
	}
	// Missing bitmap.
	q2 := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	if _, err := e.EncodeQuery(q2, map[string]sample.Bitmap{}); err == nil {
		t.Error("missing bitmap should error")
	}
	// Bitmap ablation: SampleSize 0 needs no bitmaps at all.
	e0, err := NewEncoder(d, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e0.TableDim() != len(e0.Tables) {
		t.Errorf("ablated TableDim = %d, want %d", e0.TableDim(), len(e0.Tables))
	}
	if _, err := e0.EncodeQuery(q2, nil); err != nil {
		t.Errorf("ablated encoder should not need bitmaps: %v", err)
	}
	// Column outside vocabulary (movie_companies not in set, but also a
	// predicate on a non-pred column of an in-set table).
	q3 := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "id", Op: db.OpEq, Val: 3}},
	}
	bms3, _ := s.Bitmaps(q3)
	if _, err := e.EncodeQuery(q3, bms3); err == nil {
		t.Error("out-of-vocabulary column should error")
	}
}

func TestLiteralNormalization(t *testing.T) {
	d, s := featDB(t)
	e, _ := NewEncoder(d, nil, 64)
	col := d.Table("title").Column("production_year")
	mk := func(v int64) float64 {
		q := db.Query{
			Tables: []db.TableRef{{Table: "title", Alias: "t"}},
			Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpEq, Val: v}},
		}
		bms, _ := s.Bitmaps(q)
		enc, err := e.EncodeQuery(q, bms)
		if err != nil {
			t.Fatal(err)
		}
		pv := enc.PredVecs[0]
		return pv[len(pv)-1]
	}
	if got := mk(col.Min); got != 0 {
		t.Errorf("min literal normalized to %v, want 0", got)
	}
	if got := mk(col.Max); got != 1 {
		t.Errorf("max literal normalized to %v, want 1", got)
	}
	mid := mk((col.Min + col.Max) / 2)
	if mid <= 0.2 || mid >= 0.8 {
		t.Errorf("mid literal normalized to %v", mid)
	}
	// Out-of-range literals clamp.
	if mk(col.Max+100) != 1 || mk(col.Min-100) != 0 {
		t.Error("out-of-range literals should clamp")
	}
}

func TestFitLabels(t *testing.T) {
	d, _ := featDB(t)
	e, _ := NewEncoder(d, nil, 16)
	e.FitLabels([]int64{1, 10, 100})
	if e.Norm.MinLog != 0 || e.Norm.Scale() <= 0 {
		t.Errorf("norm = %+v", e.Norm)
	}
}

func TestEncoderJSONRoundTrip(t *testing.T) {
	d, s := featDB(t)
	e, _ := NewEncoder(d, nil, 64)
	e.FitLabels([]int64{1, 5, 50000})
	blob, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var e2 Encoder
	if err := json.Unmarshal(blob, &e2); err != nil {
		t.Fatal(err)
	}
	if e2.TableDim() != e.TableDim() || e2.JoinDim() != e.JoinDim() || e2.PredDim() != e.PredDim() {
		t.Fatal("dims differ after round trip")
	}
	if e2.Norm != e.Norm {
		t.Fatal("label norm lost")
	}
	// The restored encoder must encode queries identically.
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "movie_keyword", Alias: "mk"}},
		Joins:  []db.JoinPred{{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "kind_id", Op: db.OpEq, Val: 1}},
	}
	bms, _ := s.Bitmaps(q)
	a, err := e.EncodeQuery(q, bms)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.EncodeQuery(q, bms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TableVecs {
		for j := range a.TableVecs[i] {
			if a.TableVecs[i][j] != b.TableVecs[i][j] {
				t.Fatal("table vecs differ after round trip")
			}
		}
	}
	for j := range a.PredVecs[0] {
		if a.PredVecs[0][j] != b.PredVecs[0][j] {
			t.Fatal("pred vecs differ after round trip")
		}
	}
}

func TestJoinDirectionInvariance(t *testing.T) {
	// a.x=b.y and b.y=a.x must hit the same one-hot slot (set semantics).
	d, s := featDB(t)
	e, _ := NewEncoder(d, nil, 64)
	q1 := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "movie_keyword", Alias: "mk"}},
		Joins:  []db.JoinPred{{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
	}
	q2 := db.Query{
		Tables: q1.Tables,
		Joins:  []db.JoinPred{{LeftAlias: "t", LeftCol: "id", RightAlias: "mk", RightCol: "movie_id"}},
	}
	bms, _ := s.Bitmaps(q1)
	a, err := e.EncodeQuery(q1, bms)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EncodeQuery(q2, bms)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.JoinVecs[0] {
		if a.JoinVecs[0][j] != b.JoinVecs[0][j] {
			t.Fatal("join direction changed encoding")
		}
	}
}
