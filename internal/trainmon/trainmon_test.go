package trainmon

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestMonitorStagesAndSnapshot(t *testing.T) {
	m := New()
	// Deterministic clock.
	now := time.Unix(1000, 0)
	m.now = func() time.Time { now = now.Add(50 * time.Millisecond); return now }

	m.StartStage(StageGenerate, "generating")
	m.Progress(StageGenerate, 5, 10)
	m.EndStage(StageGenerate)
	m.StartStage(StageTrain, "")
	m.Epoch(1, 5.5, 40, 8)
	m.Epoch(2, 3.0, 20, 4)
	m.EndStage(StageTrain)

	evs := m.Events()
	if len(evs) != 7 {
		t.Fatalf("events = %d, want 7", len(evs))
	}
	snap := m.Snapshot()
	if !snap.Finished {
		t.Error("train stage ended; snapshot should be finished")
	}
	if snap.Epoch != 2 || snap.ValMeanQ != 20 || snap.ValMedQ != 4 {
		t.Errorf("snapshot epoch state wrong: %+v", snap)
	}
	if snap.StageTimes[StageGenerate] <= 0 {
		t.Errorf("generate stage time missing: %+v", snap.StageTimes)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.StartStage(StageTrain, "")
	m.EndStage(StageTrain)
	m.Epoch(1, 0, 0, 0)
	m.Progress(StageTrain, 1, 2)
	if m.Events() != nil {
		t.Error("nil monitor should return nil events")
	}
}

func TestSinkReceivesEvents(t *testing.T) {
	m := New()
	var got []Event
	m.AddSink(func(e Event) { got = append(got, e) })
	m.Epoch(1, 1, 2, 3)
	m.Progress(StageExecute, 3, 9)
	if len(got) != 2 {
		t.Fatalf("sink saw %d events", len(got))
	}
	if got[0].Kind != KindEpoch || got[1].Done != 3 {
		t.Errorf("sink payloads wrong: %+v", got)
	}
}

func TestJSONLSink(t *testing.T) {
	m := New()
	var buf bytes.Buffer
	m.AddSink(NewJSONLSink(&buf, nil))
	m.Epoch(3, 1.5, 12, 4)
	line := strings.TrimSpace(buf.String())
	var e Event
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("invalid JSONL: %v (%q)", err, line)
	}
	if e.Epoch != 3 || e.ValMeanQ != 12 {
		t.Errorf("round-tripped event wrong: %+v", e)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 2, 3, 4, 8})
	if len([]rune(s)) != 5 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Error("flat sparkline length wrong")
	}
}

func TestFormatStageTimes(t *testing.T) {
	out := FormatStageTimes(map[Stage]int{StageTrain: 120, StageGenerate: 10})
	if !strings.Contains(out, "generate=10ms") || !strings.Contains(out, "train=120ms") {
		t.Errorf("FormatStageTimes = %q", out)
	}
	// Pipeline order: generate before train.
	if strings.Index(out, "generate") > strings.Index(out, "train") {
		t.Error("stages out of order")
	}
}
