// Package trainmon records sketch-creation progress: the four pipeline
// stages of Figure 1a and per-epoch training metrics. It replaces the demo's
// TensorBoard integration with an embeddable event log that the CLI renders
// as text and the demo server exposes over JSON, so users can "monitor the
// training progress, including the execution of training queries and the
// training of the deep learning model".
package trainmon

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"
)

// Stage identifies one step of the sketch creation pipeline (Figure 1a).
type Stage string

const (
	StageDefine    Stage = "define"    // 1: table set + parameters
	StageGenerate  Stage = "generate"  // 2: generate training queries
	StageExecute   Stage = "execute"   // 3: execute against DB + samples
	StageFeaturize Stage = "featurize" // 4a: featurize queries and bitmaps
	StageTrain     Stage = "train"     // 4b: train the MSCN model
)

// Kind discriminates event payloads.
type Kind string

const (
	KindStageStart Kind = "stage_start"
	KindStageEnd   Kind = "stage_end"
	KindProgress   Kind = "progress"
	KindTrainStart Kind = "train_start"
	KindEpoch      Kind = "epoch"
)

// Event is one monitoring record.
type Event struct {
	Time  time.Time `json:"time"`
	Kind  Kind      `json:"kind"`
	Stage Stage     `json:"stage"`
	// Done/Total carry progress within a stage (queries executed, ...).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Epoch metrics (KindEpoch).
	Epoch     int     `json:"epoch,omitempty"`
	TrainLoss float64 `json:"train_loss,omitempty"`
	ValMeanQ  float64 `json:"val_mean_q,omitempty"`
	ValMedQ   float64 `json:"val_median_q,omitempty"`
	// Workers is the data-parallel training worker count (KindTrainStart).
	Workers int `json:"workers,omitempty"`
	// Elapsed is the stage duration, set on KindStageEnd.
	Elapsed time.Duration `json:"elapsed,omitempty"`
	Msg     string        `json:"msg,omitempty"`
}

// Monitor is a concurrency-safe event recorder with optional sinks.
type Monitor struct {
	mu     sync.Mutex
	events []Event
	sinks  []func(Event)
	starts map[Stage]time.Time
	now    func() time.Time
}

// New returns an empty monitor.
func New() *Monitor {
	return &Monitor{starts: make(map[Stage]time.Time), now: time.Now}
}

// AddSink registers a callback invoked (synchronously, under no lock) for
// every event.
func (m *Monitor) AddSink(s func(Event)) {
	m.mu.Lock()
	m.sinks = append(m.sinks, s)
	m.mu.Unlock()
}

func (m *Monitor) emit(e Event) {
	if m == nil {
		return
	}
	m.mu.Lock()
	e.Time = m.now()
	m.events = append(m.events, e)
	sinks := make([]func(Event), len(m.sinks))
	copy(sinks, m.sinks)
	m.mu.Unlock()
	for _, s := range sinks {
		s(e)
	}
}

// StartStage records the beginning of a pipeline stage.
func (m *Monitor) StartStage(s Stage, msg string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.starts[s] = m.now()
	m.mu.Unlock()
	m.emit(Event{Kind: KindStageStart, Stage: s, Msg: msg})
}

// EndStage records the end of a pipeline stage with its duration.
func (m *Monitor) EndStage(s Stage) {
	if m == nil {
		return
	}
	m.mu.Lock()
	start, ok := m.starts[s]
	m.mu.Unlock()
	var el time.Duration
	if ok {
		el = m.now().Sub(start)
	}
	m.emit(Event{Kind: KindStageEnd, Stage: s, Elapsed: el})
}

// Progress records done/total progress inside a stage.
func (m *Monitor) Progress(s Stage, done, total int) {
	m.emit(Event{Kind: KindProgress, Stage: s, Done: done, Total: total})
}

// TrainStart records the training execution shape: the number of
// data-parallel workers and the train/validation split sizes.
func (m *Monitor) TrainStart(workers, train, val int) {
	m.emit(Event{Kind: KindTrainStart, Stage: StageTrain, Workers: workers,
		Total: train + val,
		Msg:   fmt.Sprintf("training on %d examples (%d held out) with %d workers", train, val, workers)})
}

// Epoch records per-epoch training metrics.
func (m *Monitor) Epoch(epoch int, trainLoss, valMeanQ, valMedQ float64) {
	m.emit(Event{Kind: KindEpoch, Stage: StageTrain, Epoch: epoch,
		TrainLoss: trainLoss, ValMeanQ: valMeanQ, ValMedQ: valMedQ})
}

// Events returns a copy of all recorded events.
func (m *Monitor) Events() []Event {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Snapshot summarizes current progress for polling clients (the demo UI).
type Snapshot struct {
	Stage      Stage         `json:"stage"`
	Done       int           `json:"done"`
	Total      int           `json:"total"`
	Epoch      int           `json:"epoch"`
	ValMeanQ   float64       `json:"val_mean_q"`
	ValMedQ    float64       `json:"val_median_q"`
	Workers    int           `json:"workers,omitempty"`
	StageTimes map[Stage]int `json:"stage_ms"`
	Finished   bool          `json:"finished"`
}

// Snapshot computes the latest state from the event log.
func (m *Monitor) Snapshot() Snapshot {
	snap := Snapshot{StageTimes: map[Stage]int{}}
	for _, e := range m.Events() {
		switch e.Kind {
		case KindStageStart:
			snap.Stage = e.Stage
			snap.Done, snap.Total = 0, 0
		case KindProgress:
			snap.Stage = e.Stage
			snap.Done, snap.Total = e.Done, e.Total
		case KindTrainStart:
			snap.Stage = StageTrain
			snap.Workers = e.Workers
		case KindEpoch:
			snap.Stage = StageTrain
			snap.Epoch = e.Epoch
			snap.ValMeanQ, snap.ValMedQ = e.ValMeanQ, e.ValMedQ
		case KindStageEnd:
			snap.StageTimes[e.Stage] = int(e.Elapsed / time.Millisecond)
			if e.Stage == StageTrain {
				snap.Finished = true
			}
		}
	}
	return snap
}

// NewJSONLSink returns a sink writing one JSON object per event line.
// Errors are reported through errf (which may be nil to ignore them).
func NewJSONLSink(w io.Writer, errf func(error)) func(Event) {
	enc := json.NewEncoder(w)
	return func(e Event) {
		if err := enc.Encode(e); err != nil && errf != nil {
			errf(err)
		}
	}
}

// Sparkline renders values as a unicode mini-chart, used by the CLI to show
// the validation q-error trajectory like TensorBoard's scalar charts.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat("?", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune('?')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// FormatStageTimes renders stage durations in pipeline order.
func FormatStageTimes(times map[Stage]int) string {
	order := []Stage{StageDefine, StageGenerate, StageExecute, StageFeaturize, StageTrain}
	var parts []string
	for _, s := range order {
		if ms, ok := times[s]; ok {
			parts = append(parts, fmt.Sprintf("%s=%dms", s, ms))
		}
	}
	return strings.Join(parts, " ")
}
