package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// fake is a controllable backend: cardinality is a pure function of the
// query, and every call is counted.
type fake struct {
	name string
	fn   func(q db.Query) (float64, error)

	mu         sync.Mutex
	single     int
	batches    int
	batchSizes []int
}

func newFake(name string) *fake {
	return &fake{name: name, fn: func(q db.Query) (float64, error) {
		if len(q.Preds) == 0 {
			return 1, nil
		}
		return float64(q.Preds[0].Val), nil
	}}
}

func (f *fake) Name() string { return f.name }

func (f *fake) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	f.mu.Lock()
	f.single++
	f.mu.Unlock()
	return estimator.Run(ctx, f.name, q, f.fn)
}

func (f *fake) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	f.mu.Lock()
	f.batches++
	f.batchSizes = append(f.batchSizes, len(qs))
	f.mu.Unlock()
	out := make([]estimator.Estimate, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		card, err := f.fn(q)
		if err != nil {
			return nil, err
		}
		out[i] = estimator.Estimate{Cardinality: card, Source: f.name}
	}
	return out, nil
}

func (f *fake) counts() (single, batches int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.single, f.batches
}

// query builds a distinct single-table query per value.
func query(val int64) db.Query {
	return db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: val}},
	}
}

func TestCacheHitMiss(t *testing.T) {
	f := newFake("fake")
	c := NewCache(f, 8)
	ctx := context.Background()

	q := query(2000)
	first, err := c.Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first lookup must be a miss")
	}
	second, err := c.Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second lookup must be a hit")
	}
	if second.Cardinality != first.Cardinality || second.Source != first.Source {
		t.Errorf("hit %+v differs from computed %+v", second, first)
	}
	if single, _ := f.counts(); single != 1 {
		t.Errorf("backend called %d times, want 1", single)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestCacheKeyIsCanonical(t *testing.T) {
	f := newFake("fake")
	c := NewCache(f, 8)
	ctx := context.Background()

	a := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds: []db.Predicate{
			{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 2000},
			{Alias: "t", Col: "kind_id", Op: db.OpEq, Val: 1},
		},
	}
	b := a.Clone()
	b.Preds[0], b.Preds[1] = b.Preds[1], b.Preds[0]

	if _, err := c.Estimate(ctx, a); err != nil {
		t.Fatal(err)
	}
	got, err := c.Estimate(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Error("set-equal query with reordered predicates must hit the cache")
	}
}

func TestCacheEviction(t *testing.T) {
	f := newFake("fake")
	c := NewCache(f, 2)
	ctx := context.Background()

	for _, v := range []int64{1, 2, 3} { // evicts query(1)
		if _, err := c.Estimate(ctx, query(v)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
	got, err := c.Estimate(ctx, query(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Error("evicted entry must miss")
	}
	// query(3) is still resident.
	got, err = c.Estimate(ctx, query(3))
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Error("recently used entry must still hit")
	}
}

func TestCacheBatchServesHitsAndBatchesMisses(t *testing.T) {
	f := newFake("fake")
	c := NewCache(f, 8)
	ctx := context.Background()

	if _, err := c.Estimate(ctx, query(10)); err != nil {
		t.Fatal(err)
	}
	qs := []db.Query{query(10), query(11), query(12)}
	ests, err := c.EstimateBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !ests[0].CacheHit || ests[1].CacheHit || ests[2].CacheHit {
		t.Errorf("hit pattern = %v/%v/%v, want hit/miss/miss", ests[0].CacheHit, ests[1].CacheHit, ests[2].CacheHit)
	}
	for i, want := range []float64{10, 11, 12} {
		if ests[i].Cardinality != want {
			t.Errorf("batch[%d] = %v, want %v", i, ests[i].Cardinality, want)
		}
	}
	f.mu.Lock()
	sizes := append([]int(nil), f.batchSizes...)
	f.mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Errorf("backend batch sizes = %v, want [2] (only the misses)", sizes)
	}
}

func TestCoalescerMatchesSequentialUnderConcurrentLoad(t *testing.T) {
	f := newFake("fake")
	co := NewCoalescer(f, CoalesceOptions{MaxBatch: 16})
	defer co.Close()

	const clients = 64
	results := make([]estimator.Estimate, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = co.Estimate(context.Background(), query(int64(i+1)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		// Sequential ground truth: the fake's pure function of the query.
		if want := float64(i + 1); results[i].Cardinality != want {
			t.Errorf("client %d got %v, want %v", i, results[i].Cardinality, want)
		}
		if results[i].Source != "fake" {
			t.Errorf("client %d source = %q", i, results[i].Source)
		}
	}
}

// gatedFake wires a fake whose query(0) flush blocks until release is
// closed — while it blocks, further requests pile up at the coalescer's
// rendezvous and the next flush must absorb them as one batch.
func gatedFake(name string) (f *fake, started, release chan struct{}) {
	f = newFake(name)
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	inner := f.fn
	f.fn = func(q db.Query) (float64, error) {
		if q.Preds[0].Val == 0 {
			once.Do(func() { close(started) })
			<-release
		}
		return inner(q)
	}
	return f, started, release
}

func TestCoalescerBatchesQueuedRequests(t *testing.T) {
	f, started, release := gatedFake("fake")
	co := NewCoalescer(f, CoalesceOptions{MaxBatch: 8})
	defer co.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := co.Estimate(context.Background(), query(0)); err != nil {
			t.Error(err)
		}
	}()
	<-started // the worker is now stuck flushing query(0)
	for i := int64(1); i <= 3; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			if _, err := co.Estimate(context.Background(), query(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	time.Sleep(250 * time.Millisecond) // let all three park at the rendezvous
	close(release)
	wg.Wait()

	f.mu.Lock()
	sizes := append([]int(nil), f.batchSizes...)
	f.mu.Unlock()
	single, _ := f.counts()
	// The lone gate request takes the singleton fast path (one Estimate
	// call); the three queued behind it must flush as one batch.
	if single != 1 || len(sizes) != 1 || sizes[0] != 3 {
		t.Errorf("backend saw single=%d batches=%v, want single=1 batches=[3]", single, sizes)
	}
}

func TestCoalescerIsolatesPoisonedQuery(t *testing.T) {
	f, started, release := gatedFake("fake")
	base := f.fn
	f.fn = func(q db.Query) (float64, error) {
		if q.Preds[0].Val == 13 {
			return 0, fmt.Errorf("poisoned")
		}
		return base(q)
	}
	co := NewCoalescer(f, CoalesceOptions{MaxBatch: 8})
	defer co.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := co.Estimate(context.Background(), query(0)); err != nil {
			t.Error(err)
		}
	}()
	<-started
	errs := make([]error, 3)
	vals := []int64{12, 13, 14}
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = co.Estimate(context.Background(), query(vals[i]))
		}(i)
	}
	time.Sleep(250 * time.Millisecond) // the three queue into one batch
	close(release)
	wg.Wait()
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy batch-mates failed: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("poisoned query must keep its error")
	}
}

func TestCoalescerLoneRequestFlushesImmediately(t *testing.T) {
	f := newFake("fake")
	co := NewCoalescer(f, CoalesceOptions{MaxBatch: 64})
	defer co.Close()
	start := time.Now()
	if _, err := co.Estimate(context.Background(), query(1)); err != nil {
		t.Fatal(err)
	}
	// No artificial wait: a lone request on an idle coalescer must be
	// answered in far less than any batching window.
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Errorf("lone request took %v", el)
	}
}

func TestCoalescerHonorsCallerCancellation(t *testing.T) {
	f := newFake("fake")
	block := make(chan struct{})
	f.fn = func(q db.Query) (float64, error) {
		<-block
		return 1, nil
	}
	co := NewCoalescer(f, CoalesceOptions{MaxBatch: 1})
	defer func() { close(block); co.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := co.Estimate(ctx, query(1))
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestFallbackOrdering(t *testing.T) {
	primary := newFake("primary")
	primary.fn = func(q db.Query) (float64, error) {
		if q.Preds[0].Val >= 100 {
			return 0, fmt.Errorf("uncovered")
		}
		return float64(q.Preds[0].Val), nil
	}
	secondary := newFake("secondary")
	chain := Fallback(primary, secondary)
	ctx := context.Background()

	if chain.Name() != "primary → secondary" {
		t.Errorf("chain name = %q", chain.Name())
	}
	got, err := chain.Estimate(ctx, query(7))
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "primary" {
		t.Errorf("covered query answered by %q, want primary", got.Source)
	}
	if single, _ := secondary.counts(); single != 0 {
		t.Error("secondary must not be consulted when primary answers")
	}
	got, err = chain.Estimate(ctx, query(100))
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "secondary" {
		t.Errorf("uncovered query answered by %q, want secondary", got.Source)
	}
}

func TestFallbackBatchFallsThroughPerQuery(t *testing.T) {
	primary := newFake("primary")
	primary.fn = func(q db.Query) (float64, error) {
		if q.Preds[0].Val >= 100 {
			return 0, fmt.Errorf("uncovered")
		}
		return float64(q.Preds[0].Val), nil
	}
	secondary := newFake("secondary")
	chain := Fallback(primary, secondary)

	ests, err := chain.EstimateBatch(context.Background(), []db.Query{query(1), query(100), query(2)})
	if err != nil {
		t.Fatal(err)
	}
	wantSrc := []string{"primary", "secondary", "primary"}
	for i, w := range wantSrc {
		if ests[i].Source != w {
			t.Errorf("batch[%d] source = %q, want %q", i, ests[i].Source, w)
		}
	}
}

func TestFallbackAllFail(t *testing.T) {
	bad := newFake("bad")
	bad.fn = func(db.Query) (float64, error) { return 0, fmt.Errorf("nope") }
	if _, err := Fallback(bad, bad).Estimate(context.Background(), query(1)); err == nil {
		t.Error("chain of failing backends must error")
	}
}

func TestClamp(t *testing.T) {
	f := newFake("fake")
	f.fn = func(q db.Query) (float64, error) { return float64(q.Preds[0].Val) / 10, nil }
	clamped := Clamp(f, 5)
	ctx := context.Background()

	got, err := clamped.Estimate(ctx, query(2)) // raw 0.2 → 1
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality != 1 {
		t.Errorf("low estimate clamped to %v, want 1", got.Cardinality)
	}
	ests, err := clamped.EstimateBatch(ctx, []db.Query{query(30), query(900)}) // raw 3, 90 → 3, 5
	if err != nil {
		t.Fatal(err)
	}
	if ests[0].Cardinality != 3 || ests[1].Cardinality != 5 {
		t.Errorf("batch clamped to %v/%v, want 3/5", ests[0].Cardinality, ests[1].Cardinality)
	}
}

func TestSequentialBatchCancellationMidBatch(t *testing.T) {
	f := newFake("fake")
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	f.fn = func(q db.Query) (float64, error) {
		n++
		if n == 2 {
			cancel() // cancel while the batch is in flight
		}
		return 1, nil
	}
	qs := []db.Query{query(1), query(2), query(3), query(4)}
	_, err := estimator.SequentialBatch(ctx, f, qs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= len(qs) {
		t.Errorf("batch ran to completion (%d queries) despite cancellation", n)
	}
}

func TestCacheRejectsCancelledContext(t *testing.T) {
	c := NewCache(newFake("fake"), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Estimate(ctx, query(1)); err != context.Canceled {
		t.Errorf("Estimate err = %v, want context.Canceled", err)
	}
	if _, err := c.EstimateBatch(ctx, []db.Query{query(1)}); err != context.Canceled {
		t.Errorf("EstimateBatch err = %v, want context.Canceled", err)
	}
}

func TestMaxCardinality(t *testing.T) {
	d := db.NewDB("t")
	d.MustAddTable(db.MustNewTable("a", db.NewIntColumn("x", []int64{1, 2, 3})))
	d.MustAddTable(db.MustNewTable("b", db.NewIntColumn("y", []int64{1, 2})))
	if got := MaxCardinality(d); got != 6 {
		t.Errorf("MaxCardinality = %v, want 6", got)
	}
}

func TestCacheReset(t *testing.T) {
	f := newFake("fake")
	c := NewCache(f, 8)
	ctx := context.Background()
	if _, err := c.Estimate(ctx, query(1)); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
	got, err := c.Estimate(ctx, query(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Error("entry must be recomputed after Reset")
	}
}

// mutableFake is a fake whose answers change when its generation bumps —
// the shape of a Router with sketches swapping underneath a cache.
type mutableFake struct {
	fake
	gen uint64 // atomic
}

func newMutableFake() *mutableFake {
	m := &mutableFake{}
	m.fake.name = "mutable"
	m.fake.fn = func(q db.Query) (float64, error) {
		return float64(atomic.LoadUint64(&m.gen))*1e6 + float64(q.Preds[0].Val), nil
	}
	return m
}

func (m *mutableFake) bump()              { atomic.AddUint64(&m.gen, 1) }
func (m *mutableFake) generation() uint64 { return atomic.LoadUint64(&m.gen) }

// TestCacheWatchGeneration: a cache watching a registry generation must
// drop its contents as soon as the generation moves — the first request
// after a swap recomputes instead of serving the old registry's answer.
func TestCacheWatchGeneration(t *testing.T) {
	m := newMutableFake()
	c := NewCache(m, 8).WatchGeneration(m.generation)
	ctx := context.Background()
	q := query(42)

	first, err := c.Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Estimate(ctx, q); err != nil || !hit.CacheHit {
		t.Fatalf("second lookup should hit: %+v, %v", hit, err)
	}

	m.bump() // the swap
	after, err := c.Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Error("post-swap request served from the pre-swap cache")
	}
	if after.Cardinality == first.Cardinality {
		t.Error("post-swap request returned the old registry's answer")
	}
	// The new answer caches normally until the next bump.
	if hit, err := c.Estimate(ctx, q); err != nil || !hit.CacheHit || hit.Cardinality != after.Cardinality {
		t.Errorf("post-swap recompute did not cache: %+v, %v", hit, err)
	}
}

// TestCacheWatchGenerationUnderLoad: generation invalidation under
// concurrent single and batched traffic (run with -race). Invariant: no
// request may ever observe an answer older than the registry generation at
// the time it entered the cache.
func TestCacheWatchGenerationUnderLoad(t *testing.T) {
	m := newMutableFake()
	c := NewCache(m, 64).WatchGeneration(m.generation)
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := []db.Query{query(int64(g)), query(int64(g + 10)), query(int64(g + 20))}
			for {
				select {
				case <-stop:
					return
				default:
				}
				genBefore := m.generation()
				if g%2 == 0 {
					est, err := c.Estimate(ctx, qs[0])
					if err != nil {
						t.Error(err)
						return
					}
					if gotGen := uint64(est.Cardinality / 1e6); gotGen < genBefore {
						t.Errorf("answer from generation %d, but generation was already %d at request entry",
							gotGen, genBefore)
						return
					}
				} else {
					ests, err := c.EstimateBatch(ctx, qs)
					if err != nil {
						t.Error(err)
						return
					}
					for _, est := range ests {
						if gotGen := uint64(est.Cardinality / 1e6); gotGen < genBefore {
							t.Errorf("batch answer from generation %d, generation was %d at entry",
								gotGen, genBefore)
							return
						}
					}
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		m.bump()
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
}

func TestCacheInsertReplacesExistingEntry(t *testing.T) {
	// Two concurrent misses for the same query race through Estimate: both
	// snapshot the generation before computing, the fallback chain's
	// secondary answers the first (transient primary failure), the
	// recovered primary answers the second. The second insert must replace
	// the cached entry — before the fix it only MoveToFront'd, pinning the
	// fallback's answer until eviction.
	c := NewCache(newFake("primary"), 8)
	q := query(42)
	key := q.Signature()
	gen := c.generation()
	c.insert(key, estimator.Estimate{Cardinality: 7, Source: "fallback"}, gen)
	c.insert(key, estimator.Estimate{Cardinality: 42, Source: "primary"}, gen)

	got, err := c.Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Error("expected a cache hit")
	}
	if got.Cardinality != 42 || got.Source != "primary" {
		t.Errorf("cached entry = %v from %q, want 42 from primary (later insert must win)",
			got.Cardinality, got.Source)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (update must not duplicate the entry)", c.Len())
	}
}

func TestCacheStaleFallbackAnswerReplacedEndToEnd(t *testing.T) {
	// The same race end to end through the public API: request A computes
	// through the fallback (primary down), request B through the recovered
	// primary; B's result lands last and must be what the cache serves.
	primaryUp := false
	var mu sync.Mutex
	primary := newFake("primary")
	primary.fn = func(q db.Query) (float64, error) {
		mu.Lock()
		up := primaryUp
		mu.Unlock()
		if !up {
			return 0, fmt.Errorf("primary down")
		}
		return float64(q.Preds[0].Val), nil
	}
	secondary := newFake("secondary")
	c := NewCache(Fallback(primary, secondary), 8)
	ctx := context.Background()
	q := query(9)

	// A: miss, primary down, fallback answers and is cached.
	a, err := c.Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != "secondary" {
		t.Fatalf("first answer from %q, want secondary", a.Source)
	}
	// B raced A: it passed the lookup before A's insert and computes after
	// the primary recovered. Replay its insert path.
	mu.Lock()
	primaryUp = true
	mu.Unlock()
	gen := c.generation()
	b, err := Fallback(primary, secondary).Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	c.insert(q.Signature(), b, gen)

	got, err := c.Estimate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit || got.Source != "primary" {
		t.Errorf("cache serves %q (hit=%v), want the primary's refreshed answer", got.Source, got.CacheHit)
	}
}

// ctxBackend always fails EstimateBatch (forcing the coalescer's sequential
// fallback) and records which query values reach single Estimate.
type ctxBackend struct {
	mu      sync.Mutex
	singles []int64
	gate    chan struct{} // blocks the val-0 singleton flush
	started chan struct{}
}

func (b *ctxBackend) Name() string { return "ctx" }

func (b *ctxBackend) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	val := q.Preds[0].Val
	if val == 0 {
		close(b.started)
		<-b.gate
	}
	b.mu.Lock()
	b.singles = append(b.singles, val)
	b.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return estimator.Estimate{}, err
	}
	return estimator.Estimate{Cardinality: float64(val), Source: "ctx"}, nil
}

func (b *ctxBackend) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	return nil, fmt.Errorf("batch failed")
}

func TestCoalescerFallbackHonorsCallerContext(t *testing.T) {
	// A failed batched flush falls back to sequential retries. A caller
	// whose context is already cancelled must get its ctx error without the
	// backend ever seeing the query — before the fix the retry ran under
	// context.Background() and burned a forward pass for a caller that had
	// already hung up.
	b := &ctxBackend{gate: make(chan struct{}), started: make(chan struct{})}
	co := NewCoalescer(b, CoalesceOptions{MaxBatch: 8})
	defer co.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := co.Estimate(context.Background(), query(0)); err != nil {
			t.Error(err)
		}
	}()
	<-b.started // the flush goroutine is stuck on the val-0 singleton

	ctx12, cancel12 := context.WithCancel(context.Background())
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = co.Estimate(ctx12, query(12))
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[1] = co.Estimate(context.Background(), query(14))
	}()
	time.Sleep(250 * time.Millisecond) // both park in the queue
	cancel12()                         // caller 12 hangs up before the flush
	close(b.gate)
	wg.Wait()

	if errs[0] != context.Canceled {
		t.Errorf("cancelled caller got %v, want context.Canceled", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("live caller failed: %v", errs[1])
	}
	b.mu.Lock()
	seen := append([]int64(nil), b.singles...)
	b.mu.Unlock()
	for _, v := range seen {
		if v == 12 {
			t.Errorf("backend saw query 12 (%v) — cancelled caller's retry must be skipped", seen)
		}
	}
	want := map[int64]bool{0: false, 14: false}
	for _, v := range seen {
		if _, ok := want[v]; ok {
			want[v] = true
		}
	}
	for v, ok := range want {
		if !ok {
			t.Errorf("backend never saw query %d (saw %v)", v, seen)
		}
	}
}
