package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// Cache is an LRU estimate cache in front of any backend. Keys are the
// canonical query fingerprint (db.Query.Signature), so two queries that are
// equal as sets — same tables, joins and predicates in any clause order —
// share one entry. A single sketch is immutable once trained and its cached
// estimates never go stale; when the backend is a mutable registry (a
// Router whose sketches swap under traffic), tie the cache to the
// registry's generation with WatchGeneration so a swap drops every cached
// answer from the previous registry view. When the backend additionally
// splits traffic between versions of one sketch (a canary rollout), the
// bare signature is no longer a sound key — the same query's correct
// answer depends on which version its split selects — so key the cache
// with KeyFunc(router.CacheKey), which qualifies the signature with the
// answering version.
type Cache struct {
	inner estimator.Estimator
	cap   int
	// keyFn derives the cache key for a query; nil means Query.Signature.
	// Set via KeyFunc. Immutable after construction-time wiring, so the
	// estimate paths read it without the mutex.
	keyFn func(db.Query) string

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	// gen is bumped by Invalidate; an insert whose result was computed
	// under an older generation is dropped, so an invalidation cannot be
	// undone by an in-flight computation racing it.
	gen uint64
	// watch, when set, reads the backend registry's generation; lastWatch
	// is the value the current cache contents were computed under. A change
	// observed at request entry invalidates before lookup, so no request
	// can be answered from entries predating the registry mutation.
	watch     func() uint64
	lastWatch uint64

	hits, misses uint64
}

type cacheEntry struct {
	key    string
	card   float64
	src    string
	ver    int
	engine string
}

// NewCache wraps inner with an LRU of the given capacity (entries).
// Capacity <= 0 defaults to 1024.
func NewCache(inner estimator.Estimator, capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache{
		inner:   inner,
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

// Name implements estimator.Estimator.
func (c *Cache) Name() string { return c.inner.Name() }

// Stats returns cumulative hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Invalidate drops every cached entry. Needed when the backend's answers
// can change — e.g. a router cache after a sketch registers, swaps or
// unregisters and alters which backend covers which queries. Computations
// already in flight when Invalidate is called will not be inserted.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateLocked()
}

func (c *Cache) invalidateLocked() {
	c.entries = make(map[string]*list.Element, c.cap)
	c.lru.Init()
	c.gen++
}

// Reset is the historical name of Invalidate.
func (c *Cache) Reset() { c.Invalidate() }

// KeyFunc sets the function that derives a query's cache key, replacing
// the default Query.Signature. Wire it to the backing router's CacheKey
// when the backend serves multiple versions of a sketch (swaps, canary
// splits): the key then embeds the version that would answer, so a version
// transition makes the old entry unreachable instead of stale — canary
// traffic can never be answered from the previous version's cache line.
// Call during stack construction, before traffic; returns c for chaining.
func (c *Cache) KeyFunc(fn func(db.Query) string) *Cache {
	c.keyFn = fn
	return c
}

// key derives the cache key for q.
func (c *Cache) key(q db.Query) string {
	if c.keyFn != nil {
		return c.keyFn(q)
	}
	return q.Signature()
}

// WatchGeneration ties the cache's lifetime to a registry generation
// counter (e.g. Router.Generation or a lifecycle Registry's): at every
// request entry the cache compares gen() to the value its contents were
// computed under and invalidates itself on change. With this wired, a
// sketch swap needs no manual Reset call — the first request after the
// swap sees the bumped generation, drops the stale entries, and recomputes
// against the new registry view. Returns the cache for call chaining.
func (c *Cache) WatchGeneration(gen func() uint64) *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.watch = gen
	if gen != nil {
		c.lastWatch = gen()
	}
	return c
}

// generation snapshots the invalidation generation before a computation
// starts, first applying any pending registry-generation invalidation.
func (c *Cache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncWatchLocked()
	return c.gen
}

// syncWatchLocked invalidates the cache when the watched registry
// generation moved since the contents were computed.
func (c *Cache) syncWatchLocked() {
	if c.watch == nil {
		return
	}
	if g := c.watch(); g != c.lastWatch {
		c.lastWatch = g
		c.invalidateLocked()
	}
}

// lookup returns the cached estimate for key, marking it recently used. A
// watched registry generation is synced first, so a lookup can never serve
// an entry computed before the registry's latest mutation.
func (c *Cache) lookup(key string, start time.Time) (estimator.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncWatchLocked()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return estimator.Estimate{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return estimator.Estimate{
		Cardinality: ent.card,
		Source:      ent.src,
		Version:     ent.ver,
		Engine:      ent.engine,
		Latency:     time.Since(start),
		CacheHit:    true,
	}, true
}

// insert stores an estimate under key, evicting the LRU entry when full.
// Results computed before a Reset (gen mismatch) are dropped as stale. An
// existing entry is overwritten, not merely refreshed: when concurrent
// misses race — e.g. one answered by a Fallback chain's secondary during a
// transient primary failure, the other by the recovered primary — the
// later, fresher computation must win, or the fallback's answer would be
// pinned until eviction.
func (c *Cache) insert(key string, e estimator.Estimate, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncWatchLocked()
	if gen != c.gen {
		return
	}
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.card, ent.src, ent.ver, ent.engine = e.Cardinality, e.Source, e.Version, e.Engine
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, card: e.Cardinality, src: e.Source, ver: e.Version, engine: e.Engine})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Estimate implements estimator.Estimator: serve from the cache when
// possible, otherwise compute through the backend and remember the answer.
func (c *Cache) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return estimator.Estimate{}, err
	}
	start := time.Now()
	key := c.key(q)
	if est, ok := c.lookup(key, start); ok {
		return est, nil
	}
	gen := c.generation()
	est, err := c.inner.Estimate(ctx, q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	if c.keyStable(q, key) {
		c.insert(key, est, gen)
	}
	return est, nil
}

// keyStable re-derives the query's cache key after a computation and
// reports whether it still matches the pre-computation key. With a
// version-aware KeyFunc, the key and the answer come from two separate
// routing decisions: a swap/promote/rollback between them would store the
// new version's answer under the old version's key — served as a stale
// hit if the registry later returns to that version. Such racing results
// are simply not cached (the next request recomputes under the new key).
// The default signature key cannot change, so the check short-circuits.
func (c *Cache) keyStable(q db.Query, key string) bool {
	return c.keyFn == nil || c.key(q) == key
}

// EstimateBatch implements estimator.Estimator: hits are answered from the
// cache and only the misses travel to the backend, as one batch.
func (c *Cache) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	out := make([]estimator.Estimate, len(qs))
	keys := make([]string, len(qs))
	var missIdx []int
	for i, q := range qs {
		keys[i] = c.key(q)
		if est, ok := c.lookup(keys[i], start); ok {
			out[i] = est
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missQs := make([]db.Query, len(missIdx))
	for j, i := range missIdx {
		missQs[j] = qs[i]
	}
	gen := c.generation()
	ests, err := c.inner.EstimateBatch(ctx, missQs)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		out[i] = ests[j]
		if c.keyStable(qs[i], keys[i]) {
			c.insert(keys[i], ests[j], gen)
		}
	}
	return out, nil
}
