// Package serve is the serving layer stacked on top of estimation backends:
// composable middleware that turns any estimator.Estimator into a
// production-shaped service. It provides an LRU estimate cache keyed on the
// canonical query fingerprint (optionally qualified by the answering sketch
// version via Cache.KeyFunc, so swaps and canary splits never surface a
// stale version's answer), a micro-batching coalescer that merges
// concurrent single-query requests into one batched MSCN forward pass (the
// daemon's hot path under heavy traffic), sanity clamping of estimates into
// [1, |DB|], and fallback chains so an uncovered query falls through to the
// next backend (Router → PostgreSQL) instead of erroring.
//
// Every wrapper implements estimator.Estimator itself, so stacks compose
// freely:
//
//	est := serve.NewCache(serve.Clamp(serve.NewCoalescer(sketch, serve.CoalesceOptions{}), maxCard), 1024)
package serve

import (
	"context"
	"fmt"
	"strings"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// Clamp returns an estimator that clamps every cardinality into [1, max] —
// the sanity bound no estimate should escape (an MSCN extrapolating far
// outside its training distribution can produce estimates beyond the
// database's maximum possible join size). max <= 0 disables the upper
// bound and only enforces the ≥ 1 convention.
func Clamp(inner estimator.Estimator, max float64) estimator.Estimator {
	return &clamp{inner: inner, max: max}
}

type clamp struct {
	inner estimator.Estimator
	max   float64
}

func (c *clamp) Name() string { return c.inner.Name() }

func (c *clamp) apply(e estimator.Estimate) estimator.Estimate {
	if e.Cardinality < 1 {
		e.Cardinality = 1
	}
	if c.max > 0 && e.Cardinality > c.max {
		e.Cardinality = c.max
	}
	return e
}

func (c *clamp) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	e, err := c.inner.Estimate(ctx, q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	return c.apply(e), nil
}

func (c *clamp) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	ests, err := c.inner.EstimateBatch(ctx, qs)
	if err != nil {
		return nil, err
	}
	for i := range ests {
		ests[i] = c.apply(ests[i])
	}
	return ests, nil
}

// MaxCardinality returns the largest possible COUNT(*) result over the
// database — the product of all table sizes — as the natural Clamp bound.
func MaxCardinality(d *db.DB) float64 {
	max := 1.0
	for _, name := range d.TableNames() {
		max *= float64(d.Table(name).NumRows())
	}
	return max
}

// Fallback returns an estimator that tries each backend in order until one
// answers. The canonical chain is Router → PostgreSQL: a query no sketch
// covers falls through to the statistics estimator instead of erroring.
// An error is returned only when every backend fails (the last error wins),
// or immediately when ctx is done.
func Fallback(backends ...estimator.Estimator) estimator.Estimator {
	if len(backends) == 1 {
		return backends[0]
	}
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name()
	}
	return &fallback{backends: backends, name: strings.Join(names, " → ")}
}

type fallback struct {
	backends []estimator.Estimator
	name     string
}

func (f *fallback) Name() string { return f.name }

func (f *fallback) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	var lastErr error
	for _, b := range f.backends {
		if err := ctx.Err(); err != nil {
			return estimator.Estimate{}, err
		}
		est, err := b.Estimate(ctx, q)
		if err == nil {
			return est, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("serve: fallback chain is empty")
	}
	return estimator.Estimate{}, fmt.Errorf("serve: every backend failed: %w", lastErr)
}

// EstimateBatch tries the whole batch on the first backend (preserving its
// batched inference path); on failure it bisects, so the covered majority
// of a batch keeps its batched forward passes and only the queries the
// primary actually rejects fall through the chain individually. A batch
// with k bad queries costs O(k·log n) extra batch attempts, not n single
// ones.
func (f *fallback) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	out := make([]estimator.Estimate, len(qs))
	if err := f.batchInto(ctx, qs, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (f *fallback) batchInto(ctx context.Context, qs []db.Query, out []estimator.Estimate) error {
	if len(qs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(f.backends) > 0 {
		if ests, err := f.backends[0].EstimateBatch(ctx, qs); err == nil && len(ests) == len(qs) {
			copy(out, ests)
			return nil
		}
	}
	if len(qs) == 1 {
		est, err := f.Estimate(ctx, qs[0])
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		out[0] = est
		return nil
	}
	mid := len(qs) / 2
	if err := f.batchInto(ctx, qs[:mid], out[:mid]); err != nil {
		return err
	}
	return f.batchInto(ctx, qs[mid:], out[mid:])
}
