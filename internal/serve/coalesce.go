package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// CoalesceOptions tune the micro-batching coalescer.
type CoalesceOptions struct {
	// MaxBatch is the largest coalesced batch (default 64, matching the
	// MSCN inference batch size so one flush is one forward pass).
	MaxBatch int
}

func (o CoalesceOptions) withDefaults() CoalesceOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	return o
}

// Coalescer merges concurrent single-query Estimate calls into one batched
// EstimateBatch call on the backend — the daemon's hot path under heavy
// traffic, where per-query MSCN forward passes waste most of their time on
// per-call overhead. Batches form naturally: requests enqueue on a buffered
// channel while a flush is in flight, and the next flush absorbs everything
// queued at once, so an idle server serves a lone request immediately (no
// artificial wait) and a loaded server batches as deep as its arrival rate.
// Any mix of query shapes coalesces into one packed ragged-batch forward
// pass — the sketch's inference engine stores only valid set elements, so a
// mixed batch costs exactly its rows and needs no shape grouping. Results
// are the backend's batched results, which for sketches match the
// sequential path query-by-query.
//
// A Coalescer owns a background flush goroutine; call Close when done.
type Coalescer struct {
	inner estimator.Estimator
	opts  CoalesceOptions
	reqs  chan coalesceReq
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once

	// respPool recycles the per-request response channels. A channel is
	// returned to the pool only by the caller that received its response —
	// an abandoned (cancelled) request's channel is left for the GC, since
	// the flusher may still send into it.
	respPool sync.Pool

	// Flush-goroutine-local scratch, reused across flushes.
	batch []coalesceReq
	qs    []db.Query
}

type coalesceReq struct {
	// ctx is the caller's context. Multi-request flushes ignore it (no
	// single caller may cancel its batch-mates' work), but a singleton
	// flush has exactly one caller and honors it.
	ctx  context.Context
	q    db.Query
	resp chan coalesceResp
}

type coalesceResp struct {
	est estimator.Estimate
	err error
}

// NewCoalescer starts a coalescer over the backend.
func NewCoalescer(inner estimator.Estimator, opts CoalesceOptions) *Coalescer {
	opts = opts.withDefaults()
	c := &Coalescer{
		inner: inner,
		opts:  opts,
		reqs:  make(chan coalesceReq, opts.MaxBatch),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.loop()
	return c
}

// Name implements estimator.Estimator.
func (c *Coalescer) Name() string { return c.inner.Name() }

// Close stops the flush goroutine. Pending requests are answered first;
// Estimate calls after Close fail.
func (c *Coalescer) Close() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

func (c *Coalescer) loop() {
	defer close(c.done)
	for {
		var first coalesceReq
		select {
		case <-c.stop:
			c.drain()
			return
		case first = <-c.reqs:
		}
		batch := append(c.batch[:0], first)
		yielded := false
		for len(batch) < c.opts.MaxBatch {
			select {
			case r := <-c.reqs:
				batch = append(batch, r)
				continue
			default:
			}
			if yielded {
				break
			}
			// The queue is momentarily empty, but concurrent callers may be
			// one scheduler pass away from enqueueing (the forward pass is
			// now fast enough that flushes outrun arrivals). Yield exactly
			// once: under load this deepens the batch dramatically; on an
			// idle server it costs one no-op scheduler call, so a lone
			// request still flushes immediately.
			runtime.Gosched()
			yielded = true
		}
		c.flush(batch)
		// Keep the (possibly grown) scratch but drop its contents: stale
		// entries would pin request contexts, queries and response channels
		// until the next equally deep batch overwrote them.
		for i := range batch {
			batch[i] = coalesceReq{}
		}
		c.batch = batch
		c.qs = clearQueries(c.qs)
	}
}

func clearQueries(qs []db.Query) []db.Query {
	for i := range qs {
		qs[i] = db.Query{}
	}
	return qs[:0]
}

// drain answers requests that were already queued when Close fired. A
// request racing past the final empty check here is not hung: its caller
// gets the closed-coalescer error from Estimate's <-c.done branch (the one
// stranded entry stays buffered until the Coalescer itself is collected).
func (c *Coalescer) drain() {
	for {
		select {
		case r := <-c.reqs:
			est, err := c.inner.Estimate(r.ctx, r.q)
			r.resp <- coalesceResp{est: est, err: err}
		default:
			return
		}
	}
}

// flush answers one coalesced batch. The batch runs under a background
// context: it serves multiple independent callers, so no single caller's
// cancellation may abort it — a caller whose ctx dies stops waiting in
// Estimate instead. If the batched call fails, each request retries
// individually so one poisoned query cannot sink its batch-mates; the
// retries run under their own caller's context — a cancelled caller's
// query is answered with its ctx error instead of burning a forward pass,
// and a live caller can still cancel its retry mid-flight.
//
//deepsketch:ctxorigin batch serves many callers; per-caller retries honor each caller's own ctx
func (c *Coalescer) flush(batch []coalesceReq) {
	if len(batch) == 1 {
		// Singleton fast path: skip the batch plumbing, and honor the one
		// caller's context — a disconnected client's lone request should
		// not consume a forward pass.
		est, err := c.inner.Estimate(batch[0].ctx, batch[0].q)
		batch[0].resp <- coalesceResp{est: est, err: err}
		return
	}
	start := time.Now()
	qs := c.qs[:0]
	for _, r := range batch {
		qs = append(qs, r.q)
	}
	c.qs = qs
	ests, err := c.inner.EstimateBatch(context.Background(), qs)
	if err != nil || len(ests) != len(batch) {
		for _, r := range batch {
			if cerr := r.ctx.Err(); cerr != nil {
				r.resp <- coalesceResp{err: cerr}
				continue
			}
			est, rerr := c.inner.Estimate(r.ctx, r.q)
			r.resp <- coalesceResp{est: est, err: rerr}
		}
		return
	}
	elapsed := time.Since(start)
	for i, r := range batch {
		est := ests[i]
		est.Latency = elapsed
		r.resp <- coalesceResp{est: est}
	}
}

// Estimate implements estimator.Estimator by enqueueing the query for the
// next coalesced flush and waiting for its result (or ctx cancellation).
func (c *Coalescer) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	// Refuse early once closed — narrows (but cannot eliminate) the window
	// in which a request is enqueued after the final drain; see drain.
	select {
	case <-c.stop:
		return estimator.Estimate{}, fmt.Errorf("serve: coalescer closed")
	default:
	}
	resp, _ := c.respPool.Get().(chan coalesceResp)
	if resp == nil {
		resp = make(chan coalesceResp, 1)
	}
	select {
	case c.reqs <- coalesceReq{ctx: ctx, q: q, resp: resp}:
	case <-ctx.Done():
		c.respPool.Put(resp)
		return estimator.Estimate{}, ctx.Err()
	case <-c.stop:
		c.respPool.Put(resp)
		return estimator.Estimate{}, fmt.Errorf("serve: coalescer closed")
	}
	select {
	case r := <-resp:
		c.respPool.Put(resp)
		return r.est, r.err
	case <-ctx.Done():
		return estimator.Estimate{}, ctx.Err()
	case <-c.done:
		// The flush loop exited. Our request either made it into the final
		// drain (its response is already buffered) or raced past it.
		select {
		case r := <-resp:
			c.respPool.Put(resp)
			return r.est, r.err
		default:
			return estimator.Estimate{}, fmt.Errorf("serve: coalescer closed")
		}
	}
}

// EstimateBatch implements estimator.Estimator by passing the already-
// batched call straight to the backend.
func (c *Coalescer) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	return c.inner.EstimateBatch(ctx, qs)
}
