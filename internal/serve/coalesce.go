package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// CoalesceOptions tune the micro-batching coalescer.
type CoalesceOptions struct {
	// MaxBatch is the largest coalesced batch (default 64, matching the
	// MSCN inference batch size so one flush is one forward pass).
	MaxBatch int
}

func (o CoalesceOptions) withDefaults() CoalesceOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	return o
}

// Coalescer merges concurrent single-query Estimate calls into one batched
// EstimateBatch call on the backend — the daemon's hot path under heavy
// traffic, where per-query MSCN forward passes waste most of their time on
// per-call overhead. Batches form naturally: while one flush is in flight,
// arriving requests queue on the rendezvous channel and the next flush
// absorbs all of them at once, so an idle server serves a lone request
// immediately (no artificial wait) and a loaded server batches as deep as
// its arrival rate. Results are the backend's batched results, which for
// sketches match the sequential path query-by-query.
//
// A Coalescer owns a background flush goroutine; call Close when done.
type Coalescer struct {
	inner estimator.Estimator
	opts  CoalesceOptions
	reqs  chan coalesceReq
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

type coalesceReq struct {
	// ctx is the caller's context. Multi-request flushes ignore it (no
	// single caller may cancel its batch-mates' work), but a singleton
	// flush has exactly one caller and honors it.
	ctx  context.Context
	q    db.Query
	resp chan coalesceResp
}

type coalesceResp struct {
	est estimator.Estimate
	err error
}

// NewCoalescer starts a coalescer over the backend.
func NewCoalescer(inner estimator.Estimator, opts CoalesceOptions) *Coalescer {
	c := &Coalescer{
		inner: inner,
		opts:  opts.withDefaults(),
		reqs:  make(chan coalesceReq),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.loop()
	return c
}

// Name implements estimator.Estimator.
func (c *Coalescer) Name() string { return c.inner.Name() }

// Close stops the flush goroutine. Pending requests are answered first;
// Estimate calls after Close fail.
func (c *Coalescer) Close() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

func (c *Coalescer) loop() {
	defer close(c.done)
	for {
		var first coalesceReq
		select {
		case <-c.stop:
			return
		case first = <-c.reqs:
		}
		batch := []coalesceReq{first}
		// Greedily absorb every request already waiting at the rendezvous
		// (senders that queued while the previous flush ran), without
		// waiting for stragglers — a lone request flushes immediately.
	collect:
		for len(batch) < c.opts.MaxBatch {
			select {
			case r := <-c.reqs:
				batch = append(batch, r)
			default:
				break collect
			}
		}
		c.flush(batch)
	}
}

// flush answers one coalesced batch. The batch runs under a background
// context: it serves multiple independent callers, so no single caller's
// cancellation may abort it — a caller whose ctx dies stops waiting in
// Estimate instead. If the batched call fails, each request retries
// individually so one poisoned query cannot sink its batch-mates.
func (c *Coalescer) flush(batch []coalesceReq) {
	if len(batch) == 1 {
		// Singleton fast path: skip the batch plumbing, and honor the one
		// caller's context — a disconnected client's lone request should
		// not consume a forward pass.
		est, err := c.inner.Estimate(batch[0].ctx, batch[0].q)
		batch[0].resp <- coalesceResp{est: est, err: err}
		return
	}
	start := time.Now()
	qs := make([]db.Query, len(batch))
	for i, r := range batch {
		qs[i] = r.q
	}
	ests, err := c.inner.EstimateBatch(context.Background(), qs)
	if err != nil || len(ests) != len(batch) {
		for _, r := range batch {
			est, rerr := c.inner.Estimate(context.Background(), r.q)
			r.resp <- coalesceResp{est: est, err: rerr}
		}
		return
	}
	elapsed := time.Since(start)
	for i, r := range batch {
		est := ests[i]
		est.Latency = elapsed
		r.resp <- coalesceResp{est: est}
	}
}

// Estimate implements estimator.Estimator by enqueueing the query for the
// next coalesced flush and waiting for its result (or ctx cancellation).
func (c *Coalescer) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	resp := make(chan coalesceResp, 1)
	select {
	case c.reqs <- coalesceReq{ctx: ctx, q: q, resp: resp}:
	case <-ctx.Done():
		return estimator.Estimate{}, ctx.Err()
	case <-c.stop:
		return estimator.Estimate{}, fmt.Errorf("serve: coalescer closed")
	}
	select {
	case r := <-resp:
		return r.est, r.err
	case <-ctx.Done():
		return estimator.Estimate{}, ctx.Err()
	}
}

// EstimateBatch implements estimator.Estimator by passing the already-
// batched call straight to the backend.
func (c *Coalescer) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	return c.inner.EstimateBatch(ctx, qs)
}
