package router

import (
	"context"
	"fmt"
	"math"
	"testing"

	"deepsketch/internal/attack"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// TestCanarySplitStability: the split is a pure function of (signature,
// fraction) — the same signature always lands on the same side at a fixed
// fraction, across calls and router instances.
func TestCanarySplitStability(t *testing.T) {
	const fraction = 0.25
	for i := 0; i < 500; i++ {
		sig := fmt.Sprintf("sig-%d", i)
		first := CanarySplit(sig, fraction)
		for rep := 0; rep < 5; rep++ {
			if CanarySplit(sig, fraction) != first {
				t.Fatalf("split of %q flapped at fixed fraction", sig)
			}
		}
	}
	if CanarySplit("anything", 0) || CanarySplit("anything", -0.5) {
		t.Error("fraction <= 0 must never select the canary")
	}
	if !CanarySplit("anything", 1) || !CanarySplit("anything", 1.5) {
		t.Error("fraction >= 1 must always select the canary")
	}
}

// TestCanarySplitStabilityUnderAdaptiveProber drives the real attack-side
// canary prober against the split across a rising fraction ladder. The
// stability contract under an adaptive adversary: within a fraction no
// signature ever flaps between arms (re-probing buys the prober nothing),
// and across fractions membership moves strictly monotonically — a
// signature that joined the canary at fraction f is in it at every f' > f,
// so an operator widening a canary never silently swaps the probed arm out
// from under the traffic an adversary (or a legit client) has concentrated.
func TestCanarySplitStabilityUnderAdaptiveProber(t *testing.T) {
	ctx := context.Background()
	// Prime-strided predicate values: FNV-1a on near-identical signatures
	// produces long same-arm runs, so sequential values would leave one arm
	// empty at small fractions (see the attack package's pool helper).
	pool := make([]db.Query, 64)
	for i := range pool {
		pool[i] = db.Query{
			Tables: []db.TableRef{{Table: "title", Alias: "t"}},
			Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: int64(1900 + i*1237)}},
		}
	}
	probe := func(f float64) *attack.Transcript {
		tgt := attack.Target{
			Estimate: func(ctx context.Context, q db.Query) (estimator.Estimate, error) {
				ver := 1
				if CanarySplit(q.Signature(), f) {
					ver = 2
				}
				return estimator.Estimate{Cardinality: 100, Version: ver}, nil
			},
		}
		tr, err := attack.NewCanaryProber(attack.CanaryProberConfig{
			Seed: 5, Queries: pool, Budget: 3 * len(pool),
		}).Run(ctx, tgt)
		if err != nil {
			t.Fatalf("prober at fraction %v: %v", f, err)
		}
		return tr
	}
	armOf := func(tr *attack.Transcript, f float64) map[string]bool {
		arm := map[string]bool{}
		seen := map[string]int{}
		for _, st := range tr.Steps {
			if prev, ok := seen[st.Signature]; ok && prev != st.Version {
				t.Fatalf("signature %q flapped v%d→v%d within fraction %v", st.Signature, prev, st.Version, f)
			}
			seen[st.Signature] = st.Version
			arm[st.Signature] = st.Version == 2
		}
		return arm
	}

	var prev map[string]bool
	for _, f := range []float64{0.1, 0.3, 0.5, 0.8} {
		tr := probe(f)
		arm := armOf(tr, f)
		// The prober must see both arms at every rung of this ladder and
		// lock onto the canary one.
		if !tr.Detected || tr.TargetArm != 2 {
			t.Fatalf("prober at fraction %v: detected=%v target=v%d, want a detected v2 arm", f, tr.Detected, tr.TargetArm)
		}
		// Re-probing at the same fraction is a fixed point: an identical
		// second campaign maps every signature to the same arm.
		for sig, in := range armOf(probe(f), f) {
			if arm[sig] != in {
				t.Fatalf("signature %q changed arms on re-probe at fraction %v", sig, f)
			}
		}
		// Monotonic across fractions: canary membership only grows.
		if prev != nil {
			grew := false
			for sig, in := range prev {
				if in && !arm[sig] {
					t.Fatalf("signature %q left the canary when the fraction grew to %v", sig, f)
				}
				if !in && arm[sig] {
					grew = true
				}
			}
			if !grew {
				t.Errorf("no signature joined the canary when the fraction grew to %v — pool too small to observe the move", f)
			}
		}
		prev = arm
	}
}

// TestCanarySplitFractionMoves: raising the fraction from f1 to f2 moves
// only the expected share of signatures onto the canary and moves none off
// it (monotonicity); the canary share tracks the fraction.
func TestCanarySplitFractionMoves(t *testing.T) {
	const n = 5000
	sigs := make([]string, n)
	for i := range sigs {
		sigs[i] = fmt.Sprintf("SELECT-shape-%d#pred%d", i, i%7)
	}
	share := func(f float64) (int, map[string]bool) {
		in := make(map[string]bool)
		for _, s := range sigs {
			if CanarySplit(s, f) {
				in[s] = true
			}
		}
		return len(in), in
	}
	for _, f := range []float64{0.1, 0.3, 0.5} {
		got, _ := share(f)
		if frac := float64(got) / n; math.Abs(frac-f) > 0.03 {
			t.Errorf("canary share at fraction %v = %.3f, want within ±0.03", f, frac)
		}
	}
	n1, in1 := share(0.1)
	n2, in2 := share(0.3)
	for s := range in1 {
		if !in2[s] {
			t.Fatalf("signature %q left the canary when the fraction grew 0.1→0.3", s)
		}
	}
	moved := n2 - n1
	if frac := float64(moved) / n; math.Abs(frac-0.2) > 0.03 {
		t.Errorf("fraction change 0.1→0.3 moved %.3f of signatures, want ≈0.2", frac)
	}
}

// TestRouterCanaryRouting: with a canary arm installed, the hash split
// decides which version answers, estimates carry the answering version,
// cache keys differ per split, and promote/clear transition atomically.
func TestRouterCanaryRouting(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 53, Titles: 400, Keywords: 30, Companies: 15, Persons: 60})
	v1 := buildSub(t, d, "imdb", nil)
	v2 := buildSub(t, d, "imdb", nil)

	r := New()
	r.RegisterVersion(v1, 1)
	if err := r.SetCanary("imdb", v2, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCanary("imdb", v2, 2, 0); err == nil {
		t.Error("fraction 0 should be rejected")
	}
	if ver, f, ok := r.Canary("imdb"); !ok || ver != 2 || f != 0.5 {
		t.Fatalf("Canary = v%d f=%v ok=%v", ver, f, ok)
	}

	// Queries with varied signatures: each must route to the sketch its
	// split selects, and the estimate must carry that version.
	ctx := context.Background()
	years := []int64{1950, 1960, 1970, 1980, 1990, 2000, 2005, 2010}
	sawPrimary, sawCanary := false, false
	var qs []db.Query
	for _, y := range years {
		q := db.Query{
			Tables: []db.TableRef{{Table: "title", Alias: "t"}},
			Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: y}},
		}
		qs = append(qs, q)
		wantCanary := CanarySplit(q.Signature(), 0.5)
		s, ver, err := r.RouteVersion(q)
		if err != nil {
			t.Fatal(err)
		}
		if wantCanary {
			sawCanary = true
			if s != v2 || ver != 2 {
				t.Errorf("year %d: canary-split query routed to v%d", y, ver)
			}
		} else {
			sawPrimary = true
			if s != v1 || ver != 1 {
				t.Errorf("year %d: primary-split query routed to v%d", y, ver)
			}
		}
		est, err := r.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Version != ver {
			t.Errorf("estimate version %d, want %d", est.Version, ver)
		}
		want, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Cardinality != want {
			t.Errorf("estimate %v, split sketch answers %v", est.Cardinality, want)
		}
		// The cache key embeds the answering version (incarnation 1: the
		// fresh router's first registration).
		key := r.CacheKey(q)
		if wantKey := VersionedCacheKey(q.Signature(), "imdb", 1, ver); key != wantKey {
			t.Errorf("cache key %q, want %q", key, wantKey)
		}
	}
	if !sawPrimary || !sawCanary {
		t.Fatalf("probe years did not exercise both splits (primary=%v canary=%v) — pick different predicates", sawPrimary, sawCanary)
	}

	// Batched path agrees with the single path, version included.
	ests, err := r.EstimateBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		one, err := r.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if ests[i].Cardinality != one.Cardinality || ests[i].Version != one.Version {
			t.Errorf("batch[%d] = (%v, v%d), single = (%v, v%d)",
				i, ests[i].Cardinality, ests[i].Version, one.Cardinality, one.Version)
		}
	}

	// Promote: canary becomes primary at 100%, arm removed, generation bumps.
	gen := r.Generation()
	if err := r.PromoteCanary("imdb"); err != nil {
		t.Fatal(err)
	}
	if r.Generation() <= gen {
		t.Error("promote did not bump the generation")
	}
	if _, _, ok := r.Canary("imdb"); ok {
		t.Error("canary arm survived promotion")
	}
	for _, q := range qs {
		s, ver, err := r.RouteVersion(q)
		if err != nil {
			t.Fatal(err)
		}
		if s != v2 || ver != 2 {
			t.Errorf("post-promote route = v%d, want promoted v2 for all traffic", ver)
		}
	}
	if err := r.PromoteCanary("imdb"); err == nil {
		t.Error("promote without a canary should fail")
	}

	// Clear: installing and aborting restores the primary for all traffic.
	if err := r.SetCanary("imdb", v1, 3, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.ClearCanary("imdb"); err != nil {
		t.Fatal(err)
	}
	if err := r.ClearCanary("imdb"); err == nil {
		t.Error("double clear should fail")
	}
	for _, q := range qs {
		if _, ver, _ := r.RouteVersion(q); ver != 2 {
			t.Errorf("post-clear route = v%d, want primary v2", ver)
		}
	}
}

// TestRouterCanaryCoverageMismatch: a canary whose table set differs from
// the primary's is rejected — the split must never change coverage.
func TestRouterCanaryCoverageMismatch(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 54, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	full := buildSub(t, d, "imdb", nil)
	sub := buildSub(t, d, "imdb", []string{"title", "movie_keyword", "keyword"})
	r := New()
	r.RegisterVersion(full, 1)
	if err := r.SetCanary("imdb", sub, 2, 0.5); err == nil {
		t.Error("coverage-shrinking canary should be rejected")
	}
	if err := r.SetCanary("missing", full, 2, 0.5); err == nil {
		t.Error("canary on unknown name should be rejected")
	}
}
