// Package router selects among multiple Deep Sketches. The paper leaves
// open "for which schema parts we should build such sketches" and expects
// deployments to hold several (the demo's SHOW SKETCHES list); the router
// answers estimation requests from whichever registered sketch covers the
// query's tables, preferring the most specific (smallest) covering sketch —
// specialist sketches see a denser training distribution over their
// subschema and estimate it better than a generalist.
package router

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// entry is one registered sketch with its coverage precomputed: the table
// set is materialized once at Register time, so the covers test on the
// dispatch hot path is pure map lookups — no per-query allocation.
type entry struct {
	s      *core.Sketch
	tables map[string]bool
	size   int // len(s.Cfg.Tables): dispatch prefers the smallest cover
}

func (e *entry) covers(q db.Query) bool {
	for _, tr := range q.Tables {
		if !e.tables[tr.Table] {
			return false
		}
	}
	return true
}

// Router is a concurrency-safe registry of sketches with coverage-based
// dispatch. It implements estimator.Estimator, so a whole fleet of sketches
// serves through the same interface as a single one. Sketches can be
// swapped and unregistered under live traffic: every mutation installs a
// fresh entry slice (copy-on-write) and bumps the registry generation, so
// in-flight batches keep routing against the snapshot they started with
// while caches keyed on the generation know to invalidate.
type Router struct {
	mu      sync.RWMutex
	entries []*entry
	// gen is atomic, not mutex-guarded: serving caches read it on every
	// lookup (serve.Cache.WatchGeneration), and a lock-free load keeps the
	// registry mutex out of the estimate hot path — PR 3 deliberately
	// reduced that path to one RLock per batch.
	gen atomic.Uint64
}

var _ estimator.Estimator = (*Router)(nil)

// New returns an empty router.
func New() *Router { return &Router{} }

func newEntry(s *core.Sketch) *entry {
	e := &entry{s: s, tables: make(map[string]bool, len(s.Cfg.Tables)), size: len(s.Cfg.Tables)}
	for _, t := range s.Cfg.Tables {
		e.tables[t] = true
	}
	return e
}

// Register adds a sketch. Sketches may overlap; dispatch prefers the
// smallest covering table set, breaking ties by registration order.
func (r *Router) Register(s *core.Sketch) {
	e := newEntry(s)
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make([]*entry, len(r.entries), len(r.entries)+1)
	copy(next, r.entries)
	r.entries = append(next, e)
	r.gen.Add(1)
}

// Swap atomically replaces the registered sketch whose name matches with a
// new one, keeping its position (and therefore its dispatch tie-break
// order). Traffic in flight keeps its pre-swap snapshot; every estimate
// routed after Swap returns sees the new sketch. The new sketch's coverage
// may differ from the old one's. Returns an error when no sketch of that
// name is registered.
func (r *Router) Swap(name string, s *core.Sketch) error {
	e := newEntry(s)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.entries {
		if old.s.Name() == name {
			next := make([]*entry, len(r.entries))
			copy(next, r.entries)
			next[i] = e
			r.entries = next
			r.gen.Add(1)
			return nil
		}
	}
	return fmt.Errorf("router: no sketch named %q to swap", name)
}

// Unregister removes the sketch with the given name, reporting whether one
// was registered. In-flight batches holding a pre-removal snapshot finish
// against it.
func (r *Router) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.entries {
		if old.s.Name() == name {
			next := make([]*entry, 0, len(r.entries)-1)
			next = append(next, r.entries[:i]...)
			next = append(next, r.entries[i+1:]...)
			r.entries = next
			r.gen.Add(1)
			return true
		}
	}
	return false
}

// Generation returns a counter that increments on every registry mutation
// (Register, Swap, Unregister). Serving caches watch it to drop answers
// computed against a previous registry view — see serve.Cache.WatchGeneration.
func (r *Router) Generation() uint64 { return r.gen.Load() }

// snapshot returns the current entry list under one brief RLock. Mutations
// are copy-on-write — they install a fresh slice instead of editing this
// one — so the returned slice is immutable: a whole batch can route
// against one consistent snapshot without holding the lock, even while
// sketches are swapped or unregistered.
func (r *Router) snapshot() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries
}

// Len returns the number of registered sketches.
func (r *Router) Len() int { return len(r.snapshot()) }

// Names lists registered sketch names in registration order.
func (r *Router) Names() []string {
	entries := r.snapshot()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.s.Name()
	}
	return names
}

// Name implements estimator.Estimator. Estimates carry the name of the
// sketch that answered in their Source field, not this name.
func (r *Router) Name() string { return "Sketch Router" }

// routeIn picks the covering sketch from one snapshot: smallest table set
// wins, ties go to the earliest registered (a linear min scan — no
// allocation, no sort).
func routeIn(entries []*entry, q db.Query) (*core.Sketch, error) {
	var best *entry
	for _, e := range entries {
		if (best == nil || e.size < best.size) && e.covers(q) {
			best = e
		}
	}
	if best == nil {
		return nil, fmt.Errorf("router: no sketch covers tables of %s", q.SQL(nil))
	}
	return best.s, nil
}

// Route returns the sketch that will answer the query, or an error when no
// registered sketch covers every referenced table.
func (r *Router) Route(q db.Query) (*core.Sketch, error) {
	return routeIn(r.snapshot(), q)
}

// Estimate implements estimator.Estimator: route, then ask the covering
// sketch. The returned estimate's Source is the answering sketch's name.
func (r *Router) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	s, err := r.Route(q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	return s.Estimate(ctx, q)
}

// EstimateBatch implements estimator.Estimator: queries are grouped by the
// sketch that covers them — the only grouping that still exists on the
// batched path; within a sketch, the packed inference engine takes queries
// of any shapes in one ragged forward pass. The whole batch routes against
// one registry snapshot taken under a single RLock (not one per query), so
// a concurrent Register cannot split a batch across two registry views,
// and groups evaluate in first-appearance order — deterministic for a
// given batch. Results are positional; if any query is uncovered the whole
// batch fails, like Estimate would for that query.
func (r *Router) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	entries := r.snapshot()
	groups := make(map[*core.Sketch][]int)
	var order []*core.Sketch // deterministic iteration: first appearance
	for i, q := range qs {
		s, err := routeIn(entries, q)
		if err != nil {
			return nil, fmt.Errorf("router: query %d: %w", i, err)
		}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], i)
	}
	out := make([]estimator.Estimate, len(qs))
	for _, s := range order {
		idxs := groups[s]
		sub := make([]db.Query, len(idxs))
		for j, i := range idxs {
			sub[j] = qs[i]
		}
		ests, err := s.EstimateBatch(ctx, sub)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			out[i] = ests[j]
		}
	}
	return out, nil
}
