// Package router selects among multiple Deep Sketches. The paper leaves
// open "for which schema parts we should build such sketches" and expects
// deployments to hold several (the demo's SHOW SKETCHES list); the router
// answers estimation requests from whichever registered sketch covers the
// query's tables, preferring the most specific (smallest) covering sketch —
// specialist sketches see a denser training distribution over their
// subschema and estimate it better than a generalist.
//
// # Canary routing
//
// A registered name may additionally carry a canary: a candidate sketch
// (typically a freshly refreshed version) that answers a configured
// fraction of the name's traffic while the primary keeps the rest. The
// split is a deterministic hash of the query's canonical signature
// (CanarySplit), so a given query always lands on the same side at a fixed
// fraction, raising the fraction only moves new signatures onto the canary
// (never off it), and cached estimates stay coherent per split. Promote
// makes the canary the primary; Clear aborts it. The lifecycle registry
// drives these transitions as a state machine with version bookkeeping.
package router

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// entry is one registered sketch with its coverage precomputed: the table
// set is materialized once at Register time, so the covers test on the
// dispatch hot path is pure map lookups — no per-query allocation. Entries
// are immutable after install (mutations copy-on-write the slice AND the
// touched entry), so a snapshot can be read without locks.
type entry struct {
	s      *core.Sketch
	tables map[string]bool
	size   int // len(s.Cfg.Tables): dispatch prefers the smallest cover
	ver    int // registry version of s; 0 = unversioned
	// inc is the name's registration incarnation: assigned at Register,
	// preserved across swaps/canaries/promotes, fresh after an Unregister
	// re-registers the name. Cache keys embed it so a re-registered name
	// restarting at version 1 can never collide with the previous
	// incarnation's cached answers.
	inc    uint64
	canary *canarySplit
}

// canarySplit is an entry's optional canary arm: candidate sketch, its
// registry version, and the traffic fraction it answers.
type canarySplit struct {
	s        *core.Sketch
	ver      int
	fraction float64
}

// CanarySplit reports whether a query with the given canonical signature
// belongs to the canary arm at the given traffic fraction. The split is a
// pure function of (signature, fraction): FNV-1a of the signature mapped
// uniformly onto [0,1) and compared against the fraction. Properties the
// serving layers rely on:
//
//   - Stability: the same signature lands on the same side at a fixed
//     fraction, across processes and restarts (no seed, no state).
//   - Monotonicity: a signature in the canary at fraction f stays in the
//     canary at every f' > f; growing the split only adds signatures.
//   - Uniformity: over many signatures the canary share approaches the
//     fraction.
func CanarySplit(sig string, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(sig))
	// Top 53 bits → exactly representable float64 in [0,1).
	return float64(h.Sum64()>>11)/(1<<53) < fraction
}

func (e *entry) covers(q db.Query) bool {
	for _, tr := range q.Tables {
		if !e.tables[tr.Table] {
			return false
		}
	}
	return true
}

// Router is a concurrency-safe registry of sketches with coverage-based
// dispatch. It implements estimator.Estimator, so a whole fleet of sketches
// serves through the same interface as a single one. Sketches can be
// swapped and unregistered under live traffic: every mutation installs a
// fresh entry slice (copy-on-write) and bumps the registry generation, so
// in-flight batches keep routing against the snapshot they started with
// while caches keyed on the generation know to invalidate.
type Router struct {
	mu      sync.RWMutex
	entries []*entry
	// gen is atomic, not mutex-guarded: serving caches read it on every
	// lookup (serve.Cache.WatchGeneration), and a lock-free load keeps the
	// registry mutex out of the estimate hot path — PR 3 deliberately
	// reduced that path to one RLock per batch.
	gen atomic.Uint64
	// serial hands out entry incarnations (see entry.inc).
	serial atomic.Uint64
}

var _ estimator.Estimator = (*Router)(nil)

// New returns an empty router.
func New() *Router { return &Router{} }

func newEntry(s *core.Sketch, ver int) *entry {
	e := &entry{s: s, tables: make(map[string]bool, len(s.Cfg.Tables)), size: len(s.Cfg.Tables), ver: ver}
	for _, t := range s.Cfg.Tables {
		e.tables[t] = true
	}
	return e
}

// Register adds a sketch. Sketches may overlap; dispatch prefers the
// smallest covering table set, breaking ties by registration order.
func (r *Router) Register(s *core.Sketch) { r.RegisterVersion(s, 0) }

// RegisterVersion is Register with a registry version number stamped on the
// sketch's estimates (lifecycle registries install versioned sketches; 0
// means unversioned).
func (r *Router) RegisterVersion(s *core.Sketch, ver int) {
	e := newEntry(s, ver)
	e.inc = r.serial.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make([]*entry, len(r.entries), len(r.entries)+1)
	copy(next, r.entries)
	r.entries = append(next, e)
	r.gen.Add(1)
}

// Swap atomically replaces the registered sketch whose name matches with a
// new one, keeping its position (and therefore its dispatch tie-break
// order). Traffic in flight keeps its pre-swap snapshot; every estimate
// routed after Swap returns sees the new sketch. The new sketch's coverage
// may differ from the old one's. An active canary on the name is cleared —
// a direct swap invalidates whatever comparison the canary was running.
// Returns an error when no sketch of that name is registered.
func (r *Router) Swap(name string, s *core.Sketch) error { return r.SwapVersion(name, s, 0) }

// SwapVersion is Swap with a registry version number stamped on the
// sketch's estimates.
func (r *Router) SwapVersion(name string, s *core.Sketch, ver int) error {
	e := newEntry(s, ver)
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.indexLocked(name)
	if !ok {
		return fmt.Errorf("router: no sketch named %q to swap", name)
	}
	e.inc = r.entries[i].inc
	r.replaceLocked(i, e)
	return nil
}

// indexLocked finds the entry position for name; r.mu must be held.
func (r *Router) indexLocked(name string) (int, bool) {
	for i, e := range r.entries {
		if e.s.Name() == name {
			return i, true
		}
	}
	return 0, false
}

// replaceLocked installs e at position i copy-on-write and bumps the
// generation; r.mu must be held.
func (r *Router) replaceLocked(i int, e *entry) {
	next := make([]*entry, len(r.entries))
	copy(next, r.entries)
	next[i] = e
	r.entries = next
	r.gen.Add(1)
}

// SetCanary installs (or re-fractions) a canary arm on the named entry: s
// answers the given fraction of the name's traffic, hash-split by query
// signature, while the primary keeps the rest. The canary must cover the
// same table set as the primary — the split must never change which
// queries the name can answer, only which version answers them. Fraction
// must be in (0, 1]; use ClearCanary to remove the arm.
func (r *Router) SetCanary(name string, s *core.Sketch, ver int, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("router: canary fraction %v outside (0, 1]", fraction)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.indexLocked(name)
	if !ok {
		return fmt.Errorf("router: no sketch named %q to canary", name)
	}
	old := r.entries[i]
	cand := newEntry(s, ver)
	if len(cand.tables) != len(old.tables) {
		return fmt.Errorf("router: canary for %q covers %d tables, primary covers %d — coverage must match", name, len(cand.tables), len(old.tables))
	}
	for t := range old.tables {
		if !cand.tables[t] {
			return fmt.Errorf("router: canary for %q does not cover table %q", name, t)
		}
	}
	next := &entry{s: old.s, tables: old.tables, size: old.size, ver: old.ver, inc: old.inc,
		canary: &canarySplit{s: s, ver: ver, fraction: fraction}}
	r.replaceLocked(i, next)
	return nil
}

// PromoteCanary makes the named entry's canary the primary (100% of
// traffic) and removes the arm, atomically.
func (r *Router) PromoteCanary(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.indexLocked(name)
	if !ok {
		return fmt.Errorf("router: no sketch named %q", name)
	}
	c := r.entries[i].canary
	if c == nil {
		return fmt.Errorf("router: %q has no canary to promote", name)
	}
	e := newEntry(c.s, c.ver)
	e.inc = r.entries[i].inc
	r.replaceLocked(i, e)
	return nil
}

// ClearCanary removes the named entry's canary arm; the primary resumes
// answering all traffic.
func (r *Router) ClearCanary(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.indexLocked(name)
	if !ok {
		return fmt.Errorf("router: no sketch named %q", name)
	}
	old := r.entries[i]
	if old.canary == nil {
		return fmt.Errorf("router: %q has no canary to clear", name)
	}
	r.replaceLocked(i, &entry{s: old.s, tables: old.tables, size: old.size, ver: old.ver, inc: old.inc})
	return nil
}

// Canary reports the named entry's canary arm: its version and traffic
// fraction, with ok=false when the name is unknown or has no canary.
func (r *Router) Canary(name string) (ver int, fraction float64, ok bool) {
	for _, e := range r.snapshot() {
		if e.s.Name() == name {
			if e.canary == nil {
				return 0, 0, false
			}
			return e.canary.ver, e.canary.fraction, true
		}
	}
	return 0, 0, false
}

// Unregister removes the sketch with the given name, reporting whether one
// was registered. In-flight batches holding a pre-removal snapshot finish
// against it.
func (r *Router) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.entries {
		if old.s.Name() == name {
			next := make([]*entry, 0, len(r.entries)-1)
			next = append(next, r.entries[:i]...)
			next = append(next, r.entries[i+1:]...)
			r.entries = next
			r.gen.Add(1)
			return true
		}
	}
	return false
}

// Generation returns a counter that increments on every registry mutation
// (Register, Swap, Unregister). Serving caches watch it to drop answers
// computed against a previous registry view — see serve.Cache.WatchGeneration.
func (r *Router) Generation() uint64 { return r.gen.Load() }

// snapshot returns the current entry list under one brief RLock. Mutations
// are copy-on-write — they install a fresh slice instead of editing this
// one — so the returned slice is immutable: a whole batch can route
// against one consistent snapshot without holding the lock, even while
// sketches are swapped or unregistered.
func (r *Router) snapshot() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries
}

// Len returns the number of registered sketches.
func (r *Router) Len() int { return len(r.snapshot()) }

// Names lists registered sketch names in registration order.
func (r *Router) Names() []string {
	entries := r.snapshot()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.s.Name()
	}
	return names
}

// Name implements estimator.Estimator. Estimates carry the name of the
// sketch that answered in their Source field, not this name.
func (r *Router) Name() string { return "Sketch Router" }

// routeIn picks the covering entry from one snapshot: smallest table set
// wins, ties go to the earliest registered (a linear min scan — no
// allocation, no sort). When the winning entry carries a canary arm, the
// query's signature decides which version answers. The returned version is
// the answering sketch's registry version (0 when unversioned).
func routeIn(entries []*entry, q db.Query) (*core.Sketch, int, *entry, error) {
	var best *entry
	for _, e := range entries {
		if (best == nil || e.size < best.size) && e.covers(q) {
			best = e
		}
	}
	if best == nil {
		return nil, 0, nil, fmt.Errorf("router: no sketch covers tables of %s", q.SQL(nil))
	}
	if c := best.canary; c != nil && CanarySplit(q.Signature(), c.fraction) {
		return c.s, c.ver, best, nil
	}
	return best.s, best.ver, best, nil
}

// Route returns the sketch that will answer the query, or an error when no
// registered sketch covers every referenced table.
func (r *Router) Route(q db.Query) (*core.Sketch, error) {
	s, _, _, err := routeIn(r.snapshot(), q)
	return s, err
}

// RouteVersion is Route plus the answering sketch's registry version —
// under a canary, the version the query's hash split selects.
func (r *Router) RouteVersion(q db.Query) (*core.Sketch, int, error) {
	s, ver, _, err := routeIn(r.snapshot(), q)
	return s, ver, err
}

// VersionedCacheKey is the shared key shape version-aware serving caches
// use: the query's canonical signature qualified by the answering name's
// registration incarnation and registry version. Router.CacheKey and the
// lifecycle registry's CacheKey both produce it, so dedicated and routed
// stacks key identically. The incarnation distinguishes a name that was
// unregistered and re-registered — its versions restart at 1, and without
// the incarnation its keys would collide with the previous sketch's
// cached answers.
func VersionedCacheKey(sig, name string, inc uint64, ver int) string {
	return sig + "\x00" + name + "\x00" + strconv.FormatUint(inc, 10) + "v" + strconv.Itoa(ver)
}

// CacheKey returns the serving-version-aware cache key for q: the query's
// canonical signature qualified by the name and version of the sketch that
// would answer it right now. Serving caches keyed with this function
// (serve.Cache.KeyFunc) stay correct across swaps, canary starts, fraction
// changes and promotions without wholesale invalidation: when the answering
// version for a signature changes, so does its key, and the stale entry is
// simply never looked up again. For uncovered or unversioned queries the
// bare signature is returned (such answers do not vary by version).
func (r *Router) CacheKey(q db.Query) string {
	sig := q.Signature()
	s, ver, e, err := routeIn(r.snapshot(), q)
	if err != nil || ver == 0 {
		return sig
	}
	return VersionedCacheKey(sig, s.Name(), e.inc, ver)
}

// Estimate implements estimator.Estimator: route, then ask the covering
// sketch (or its canary arm, per the query's hash split). The returned
// estimate's Source is the answering sketch's name and Version its registry
// version.
func (r *Router) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	s, ver, _, err := routeIn(r.snapshot(), q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	est, err := s.Estimate(ctx, q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	est.Version = ver
	return est, nil
}

// EstimateBatch implements estimator.Estimator: queries are grouped by the
// sketch that covers them — the only grouping that still exists on the
// batched path; within a sketch, the packed inference engine takes queries
// of any shapes in one ragged forward pass. The whole batch routes against
// one registry snapshot taken under a single RLock (not one per query), so
// a concurrent Register cannot split a batch across two registry views,
// and groups evaluate in first-appearance order — deterministic for a
// given batch. Results are positional; if any query is uncovered the whole
// batch fails, like Estimate would for that query.
func (r *Router) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	entries := r.snapshot()
	return EstimateGrouped(ctx, qs, func(q db.Query) (*core.Sketch, int, error) {
		s, ver, _, err := routeIn(entries, q)
		if err != nil {
			return nil, 0, fmt.Errorf("router: %w", err)
		}
		return s, ver, nil
	})
}

// EstimateGrouped is the shared batched-dispatch loop behind every
// versioned serving view (the Router's coverage dispatch, the lifecycle
// registry's per-name canary view): each query is routed, the batch is
// grouped by answering sketch — the only grouping left on the batched
// path; within a sketch the packed engine takes any shapes in one ragged
// forward pass — groups evaluate in first-appearance order (deterministic
// for a given batch), and every estimate is stamped with its group's
// registry version. Results are positional; a route error fails the whole
// batch, like the single-query path would for that query.
func EstimateGrouped(ctx context.Context, qs []db.Query, route func(db.Query) (*core.Sketch, int, error)) ([]estimator.Estimate, error) {
	groups := make(map[*core.Sketch][]int)
	vers := make(map[*core.Sketch]int)
	var order []*core.Sketch // deterministic iteration: first appearance
	for i, q := range qs {
		s, ver, err := route(q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
			vers[s] = ver
		}
		groups[s] = append(groups[s], i)
	}
	out := make([]estimator.Estimate, len(qs))
	for _, s := range order {
		idxs := groups[s]
		sub := make([]db.Query, len(idxs))
		for j, i := range idxs {
			sub[j] = qs[i]
		}
		ests, err := s.EstimateBatch(ctx, sub)
		if err != nil {
			return nil, err
		}
		ver := vers[s]
		for j, i := range idxs {
			ests[j].Version = ver
			out[i] = ests[j]
		}
	}
	return out, nil
}
