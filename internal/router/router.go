// Package router selects among multiple Deep Sketches. The paper leaves
// open "for which schema parts we should build such sketches" and expects
// deployments to hold several (the demo's SHOW SKETCHES list); the router
// answers estimation requests from whichever registered sketch covers the
// query's tables, preferring the most specific (smallest) covering sketch —
// specialist sketches see a denser training distribution over their
// subschema and estimate it better than a generalist.
package router

import (
	"context"
	"fmt"
	"sync"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// entry is one registered sketch with its coverage precomputed: the table
// set is materialized once at Register time, so the covers test on the
// dispatch hot path is pure map lookups — no per-query allocation.
type entry struct {
	s      *core.Sketch
	tables map[string]bool
	size   int // len(s.Cfg.Tables): dispatch prefers the smallest cover
}

func (e *entry) covers(q db.Query) bool {
	for _, tr := range q.Tables {
		if !e.tables[tr.Table] {
			return false
		}
	}
	return true
}

// Router is a concurrency-safe registry of sketches with coverage-based
// dispatch. It implements estimator.Estimator, so a whole fleet of sketches
// serves through the same interface as a single one.
type Router struct {
	mu      sync.RWMutex
	entries []*entry
}

var _ estimator.Estimator = (*Router)(nil)

// New returns an empty router.
func New() *Router { return &Router{} }

// Register adds a sketch. Sketches may overlap; dispatch prefers the
// smallest covering table set, breaking ties by registration order.
func (r *Router) Register(s *core.Sketch) {
	e := &entry{s: s, tables: make(map[string]bool, len(s.Cfg.Tables)), size: len(s.Cfg.Tables)}
	for _, t := range s.Cfg.Tables {
		e.tables[t] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

// snapshot returns the current entry list under one brief RLock. Register
// only appends, so the returned prefix is immutable — a whole batch can
// route against one consistent snapshot without holding the lock.
func (r *Router) snapshot() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries
}

// Len returns the number of registered sketches.
func (r *Router) Len() int { return len(r.snapshot()) }

// Names lists registered sketch names in registration order.
func (r *Router) Names() []string {
	entries := r.snapshot()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.s.Name()
	}
	return names
}

// Name implements estimator.Estimator. Estimates carry the name of the
// sketch that answered in their Source field, not this name.
func (r *Router) Name() string { return "Sketch Router" }

// routeIn picks the covering sketch from one snapshot: smallest table set
// wins, ties go to the earliest registered (a linear min scan — no
// allocation, no sort).
func routeIn(entries []*entry, q db.Query) (*core.Sketch, error) {
	var best *entry
	for _, e := range entries {
		if (best == nil || e.size < best.size) && e.covers(q) {
			best = e
		}
	}
	if best == nil {
		return nil, fmt.Errorf("router: no sketch covers tables of %s", q.SQL(nil))
	}
	return best.s, nil
}

// Route returns the sketch that will answer the query, or an error when no
// registered sketch covers every referenced table.
func (r *Router) Route(q db.Query) (*core.Sketch, error) {
	return routeIn(r.snapshot(), q)
}

// Estimate implements estimator.Estimator: route, then ask the covering
// sketch. The returned estimate's Source is the answering sketch's name.
func (r *Router) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	s, err := r.Route(q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	return s.Estimate(ctx, q)
}

// EstimateBatch implements estimator.Estimator: queries are grouped by the
// sketch that covers them — the only grouping that still exists on the
// batched path; within a sketch, the packed inference engine takes queries
// of any shapes in one ragged forward pass. The whole batch routes against
// one registry snapshot taken under a single RLock (not one per query), so
// a concurrent Register cannot split a batch across two registry views,
// and groups evaluate in first-appearance order — deterministic for a
// given batch. Results are positional; if any query is uncovered the whole
// batch fails, like Estimate would for that query.
func (r *Router) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	entries := r.snapshot()
	groups := make(map[*core.Sketch][]int)
	var order []*core.Sketch // deterministic iteration: first appearance
	for i, q := range qs {
		s, err := routeIn(entries, q)
		if err != nil {
			return nil, fmt.Errorf("router: query %d: %w", i, err)
		}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], i)
	}
	out := make([]estimator.Estimate, len(qs))
	for _, s := range order {
		idxs := groups[s]
		sub := make([]db.Query, len(idxs))
		for j, i := range idxs {
			sub[j] = qs[i]
		}
		ests, err := s.EstimateBatch(ctx, sub)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			out[i] = ests[j]
		}
	}
	return out, nil
}
