// Package router selects among multiple Deep Sketches. The paper leaves
// open "for which schema parts we should build such sketches" and expects
// deployments to hold several (the demo's SHOW SKETCHES list); the router
// answers estimation requests from whichever registered sketch covers the
// query's tables, preferring the most specific (smallest) covering sketch —
// specialist sketches see a denser training distribution over their
// subschema and estimate it better than a generalist.
package router

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// Router is a concurrency-safe registry of sketches with coverage-based
// dispatch. It implements estimator.Estimator, so a whole fleet of sketches
// serves through the same interface as a single one.
type Router struct {
	mu       sync.RWMutex
	sketches []*core.Sketch
}

var _ estimator.Estimator = (*Router)(nil)

// New returns an empty router.
func New() *Router { return &Router{} }

// Register adds a sketch. Sketches may overlap; dispatch prefers the
// smallest covering table set, breaking ties by registration order.
func (r *Router) Register(s *core.Sketch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sketches = append(r.sketches, s)
}

// Len returns the number of registered sketches.
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sketches)
}

// Names lists registered sketch names in registration order.
func (r *Router) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.sketches))
	for i, s := range r.sketches {
		names[i] = s.Name()
	}
	return names
}

// Name implements estimator.Estimator. Estimates carry the name of the
// sketch that answered in their Source field, not this name.
func (r *Router) Name() string { return "Sketch Router" }

// Route returns the sketch that will answer the query, or an error when no
// registered sketch covers every referenced table.
func (r *Router) Route(q db.Query) (*core.Sketch, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	type cand struct {
		s    *core.Sketch
		size int
		ord  int
	}
	var cands []cand
	for ord, s := range r.sketches {
		if covers(s, q) {
			cands = append(cands, cand{s: s, size: len(s.Cfg.Tables), ord: ord})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("router: no sketch covers tables of %s", q.SQL(nil))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size < cands[j].size
		}
		return cands[i].ord < cands[j].ord
	})
	return cands[0].s, nil
}

// Estimate implements estimator.Estimator: route, then ask the covering
// sketch. The returned estimate's Source is the answering sketch's name.
func (r *Router) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	s, err := r.Route(q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	return s.Estimate(ctx, q)
}

// EstimateBatch implements estimator.Estimator: queries are grouped by the
// sketch that covers them — the only grouping that still exists on the
// batched path; within a sketch, the packed inference engine takes queries
// of any shapes in one ragged forward pass. Results are positional; if any
// query is uncovered the whole batch fails, like Estimate would for that
// query.
func (r *Router) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	groups := make(map[*core.Sketch][]int)
	for i, q := range qs {
		s, err := r.Route(q)
		if err != nil {
			return nil, fmt.Errorf("router: query %d: %w", i, err)
		}
		groups[s] = append(groups[s], i)
	}
	out := make([]estimator.Estimate, len(qs))
	for s, idxs := range groups {
		sub := make([]db.Query, len(idxs))
		for j, i := range idxs {
			sub[j] = qs[i]
		}
		ests, err := s.EstimateBatch(ctx, sub)
		if err != nil {
			return nil, err
		}
		for j, i := range idxs {
			out[i] = ests[j]
		}
	}
	return out, nil
}

func covers(s *core.Sketch, q db.Query) bool {
	set := make(map[string]bool, len(s.Cfg.Tables))
	for _, t := range s.Cfg.Tables {
		set[t] = true
	}
	for _, tr := range q.Tables {
		if !set[tr.Table] {
			return false
		}
	}
	return true
}
