// Package router selects among multiple Deep Sketches. The paper leaves
// open "for which schema parts we should build such sketches" and expects
// deployments to hold several (the demo's SHOW SKETCHES list); the router
// answers estimation requests from whichever registered sketch covers the
// query's tables, preferring the most specific (smallest) covering sketch —
// specialist sketches see a denser training distribution over their
// subschema and estimate it better than a generalist.
package router

import (
	"fmt"
	"sort"
	"sync"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
)

// Router is a concurrency-safe registry of sketches with coverage-based
// dispatch.
type Router struct {
	mu       sync.RWMutex
	sketches []*core.Sketch
}

// New returns an empty router.
func New() *Router { return &Router{} }

// Register adds a sketch. Sketches may overlap; dispatch prefers the
// smallest covering table set, breaking ties by registration order.
func (r *Router) Register(s *core.Sketch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sketches = append(r.sketches, s)
}

// Len returns the number of registered sketches.
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sketches)
}

// Names lists registered sketch names in registration order.
func (r *Router) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.sketches))
	for i, s := range r.sketches {
		names[i] = s.Name
	}
	return names
}

// Route returns the sketch that will answer the query, or an error when no
// registered sketch covers every referenced table.
func (r *Router) Route(q db.Query) (*core.Sketch, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	type cand struct {
		s    *core.Sketch
		size int
		ord  int
	}
	var cands []cand
	for ord, s := range r.sketches {
		if covers(s, q) {
			cands = append(cands, cand{s: s, size: len(s.Cfg.Tables), ord: ord})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("router: no sketch covers tables of %s", q.SQL(nil))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size < cands[j].size
		}
		return cands[i].ord < cands[j].ord
	})
	return cands[0].s, nil
}

// Estimate routes and estimates in one step.
func (r *Router) Estimate(q db.Query) (float64, error) {
	s, err := r.Route(q)
	if err != nil {
		return 0, err
	}
	return s.Estimate(q)
}

func covers(s *core.Sketch, q db.Query) bool {
	set := make(map[string]bool, len(s.Cfg.Tables))
	for _, t := range s.Cfg.Tables {
		set[t] = true
	}
	for _, tr := range q.Tables {
		if !set[tr.Table] {
			return false
		}
	}
	return true
}
