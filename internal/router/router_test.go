package router

import (
	"context"
	"sync"
	"testing"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/mscn"
)

func buildSub(t *testing.T, d *db.DB, name string, tables []string) *core.Sketch {
	t.Helper()
	s, err := core.Build(d, core.Config{
		Name: name, Tables: tables, SampleSize: 16,
		TrainQueries: 60, MaxJoins: 2, MaxPreds: 1, Seed: 3,
		Model: mscn.Config{HiddenUnits: 8, Epochs: 1, BatchSize: 16, Seed: 3},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRouterPrefersSmallestCover(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 51, Titles: 400, Keywords: 30, Companies: 15, Persons: 60})
	full := buildSub(t, d, "full", nil)
	kw := buildSub(t, d, "keywords", []string{"title", "movie_keyword", "keyword"})
	r := New()
	r.Register(full)
	r.Register(kw)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if names := r.Names(); names[0] != "full" || names[1] != "keywords" {
		t.Fatalf("Names = %v", names)
	}

	// A keyword query routes to the specialist.
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "movie_keyword", Alias: "mk"}},
		Joins:  []db.JoinPred{{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
	}
	s, err := r.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "keywords" {
		t.Errorf("routed to %s, want keywords", s.Name())
	}

	// A cast_info query only fits the full sketch.
	q2 := db.Query{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}}
	s2, err := r.Route(q2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() != "full" {
		t.Errorf("routed to %s, want full", s2.Name())
	}

	// Estimation through the router works end to end, and the estimate
	// reports which sketch answered.
	if est, err := r.Estimate(context.Background(), q); err != nil || est.Cardinality < 1 {
		t.Errorf("router estimate = %+v, %v", est, err)
	} else if est.Source != "keywords" {
		t.Errorf("estimate source = %q, want keywords", est.Source)
	}
}

func TestRouterNoCover(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 52, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	kw := buildSub(t, d, "kw", []string{"title", "movie_keyword", "keyword"})
	r := New()
	r.Register(kw)
	q := db.Query{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}}
	if _, err := r.Route(q); err == nil {
		t.Error("uncovered query should error")
	}
	if _, err := r.Estimate(context.Background(), q); err == nil {
		t.Error("uncovered estimate should error")
	}
}

func TestRouterEmptyAndConcurrent(t *testing.T) {
	r := New()
	if _, err := r.Route(db.Query{Tables: []db.TableRef{{Table: "x", Alias: "x"}}}); err == nil {
		t.Error("empty router should error")
	}
	// Concurrent register + route must be race-free (run with -race).
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 53, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	s := buildSub(t, d, "s", nil)
	q := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Register(s)
			if _, err := r.Estimate(context.Background(), q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRouterTieBreakByRegistrationOrder(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 54, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	a := buildSub(t, d, "first", []string{"title", "movie_keyword", "keyword"})
	b := buildSub(t, d, "second", []string{"title", "movie_keyword", "keyword"})
	r := New()
	r.Register(a)
	r.Register(b)
	q := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	s, err := r.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "first" {
		t.Errorf("tie should go to first registered, got %s", s.Name())
	}
}

func TestRouterEstimateBatchMatchesEstimate(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 55, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	kw := buildSub(t, d, "keywords", []string{"title", "movie_keyword", "keyword"})
	full := buildSub(t, d, "full", nil)
	r := New()
	r.Register(kw)
	r.Register(full)
	ctx := context.Background()

	// A mixed batch: some queries covered by the specialist, some only by
	// the generalist.
	qs := []db.Query{
		{Tables: []db.TableRef{{Table: "title", Alias: "t"}},
			Preds: []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 2000}}},
		{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}},
		{Tables: []db.TableRef{{Table: "movie_keyword", Alias: "mk"}}},
	}
	batch, err := r.EstimateBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qs) {
		t.Fatalf("batch size = %d", len(batch))
	}
	wantSrc := []string{"keywords", "full", "keywords"}
	for i, q := range qs {
		single, err := r.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Source != single.Source || batch[i].Source != wantSrc[i] {
			t.Errorf("query %d routed to %q (batch) / %q (single), want %q",
				i, batch[i].Source, single.Source, wantSrc[i])
		}
		if diff := batch[i].Cardinality - single.Cardinality; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("query %d: batch %v vs single %v", i, batch[i].Cardinality, single.Cardinality)
		}
	}

	// One uncovered query fails the batch, like Estimate would.
	r2 := New()
	r2.Register(kw)
	if _, err := r2.EstimateBatch(ctx, qs); err == nil {
		t.Error("batch with uncovered query should error")
	}
}

func TestRouterSwapAndUnregister(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 57, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	full := buildSub(t, d, "full", nil)
	kw := buildSub(t, d, "spec", []string{"title", "movie_keyword", "keyword"})
	r := New()
	if r.Generation() != 0 {
		t.Errorf("fresh router generation = %d", r.Generation())
	}
	r.Register(full)
	if r.Generation() != 1 {
		t.Errorf("generation after register = %d, want 1", r.Generation())
	}
	if err := r.Swap("nope", kw); err == nil {
		t.Error("swapping an unknown name should error")
	}
	// Replace the generalist with the specialist under the same slot.
	if err := r.Swap("full", kw); err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 2 {
		t.Errorf("generation after swap = %d, want 2", r.Generation())
	}
	if names := r.Names(); len(names) != 1 || names[0] != "spec" {
		t.Fatalf("Names after swap = %v", names)
	}
	q := db.Query{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}}
	if _, err := r.Route(q); err == nil {
		t.Error("swapped-in specialist should not cover cast_info")
	}
	if !r.Unregister("spec") {
		t.Error("unregister existing sketch = false")
	}
	if r.Unregister("spec") {
		t.Error("double unregister = true")
	}
	if r.Len() != 0 || r.Generation() != 3 {
		t.Errorf("after unregister: len=%d gen=%d", r.Len(), r.Generation())
	}
}

// TestRouterSwapUnregisterRace: concurrent Swap and Unregister/Register
// during in-flight EstimateBatch traffic (run with -race). Every batch must
// either succeed with internally consistent routing or fail only because
// the registry was momentarily empty of covering sketches — never observe a
// half-applied mutation.
func TestRouterSwapUnregisterRace(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 58, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	a := buildSub(t, d, "live", nil)
	b := buildSub(t, d, "live", nil) // same name: a swap target
	spec := buildSub(t, d, "spec", []string{"title", "movie_keyword", "keyword"})

	r := New()
	r.Register(a)
	qs := []db.Query{
		{Tables: []db.TableRef{{Table: "title", Alias: "t"}}},
		{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}},
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ests, err := r.EstimateBatch(ctx, qs)
				if err != nil {
					// Only acceptable when the generalist was unregistered
					// at routing time; cast_info is then uncovered.
					continue
				}
				if ests[1].Source != "live" {
					t.Errorf("cast_info answered by %q, want live", ests[1].Source)
					return
				}
			}
		}()
	}
	swapIn := a
	for i := 0; i < 50; i++ {
		if swapIn == a {
			swapIn = b
		} else {
			swapIn = a
		}
		if err := r.Swap("live", swapIn); err != nil {
			t.Error(err)
		}
		r.Register(spec)
		r.Unregister("spec")
	}
	close(stop)
	wg.Wait()
	if gen := r.Generation(); gen != 1+50*3 {
		t.Errorf("generation = %d, want %d", gen, 1+50*3)
	}
}

func TestRouterBatchDeterministicUnderConcurrentRegister(t *testing.T) {
	// A batch must route against one consistent registry snapshot (one
	// RLock per batch, groups in first-appearance order): while sketches
	// register concurrently, every EstimateBatch result must be internally
	// consistent, and with the registry frozen repeated batches must be
	// identical.
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 56, Titles: 300, Keywords: 20, Companies: 10, Persons: 50})
	full := buildSub(t, d, "full", nil)
	kw := buildSub(t, d, "kw", []string{"title", "movie_keyword", "keyword"})

	r := New()
	r.Register(full)

	qs := []db.Query{
		{Tables: []db.TableRef{{Table: "title", Alias: "t"}}},
		{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}},
		{Tables: []db.TableRef{{Table: "movie_keyword", Alias: "mk"}}},
		{Tables: []db.TableRef{{Table: "keyword", Alias: "k"}}},
	}
	ctx := context.Background()

	// Registrations race with batches (run with -race). The specialist
	// covers queries 0, 2 and 3; inside any single batch each query must be
	// answered by a sketch that covers it, with the covered trio agreeing
	// on the snapshot (all-specialist or all-generalist, never a mix in one
	// direction per query count).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ests, err := r.EstimateBatch(ctx, qs)
				if err != nil {
					t.Error(err)
					return
				}
				if ests[1].Source != "full" {
					t.Errorf("cast_info answered by %q, want full", ests[1].Source)
					return
				}
				src := ests[0].Source
				if ests[2].Source != src || ests[3].Source != src {
					t.Errorf("one batch split across registry views: %q/%q/%q",
						ests[0].Source, ests[2].Source, ests[3].Source)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		r.Register(kw)
	}
	close(stop)
	wg.Wait()

	// Registry frozen: repeated batches must be byte-for-byte deterministic
	// in routing and cardinalities.
	a, err := r.EstimateBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		b, err := r.EstimateBatch(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].Source != b[i].Source || a[i].Cardinality != b[i].Cardinality {
				t.Fatalf("rep %d query %d: %q/%v vs %q/%v — batch routing must be deterministic",
					rep, i, a[i].Source, a[i].Cardinality, b[i].Source, b[i].Cardinality)
			}
		}
	}
	if got := a[0].Source; got != "kw" {
		t.Errorf("title routed to %q, want the smaller kw cover after registration", got)
	}
}
