package datagen

import (
	"math"
	"testing"

	"deepsketch/internal/db"
)

func TestSplitmixDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := NewRand(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(Poisson(rng, 2.5))
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.1 {
		t.Errorf("poisson mean = %v, want ~2.5", mean)
	}
	if Poisson(rng, 0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	if Poisson(rng, -1) != 0 {
		t.Error("Poisson(negative) should be 0")
	}
}

func TestZipfIntsRangeAndSkew(t *testing.T) {
	rng := NewRand(5)
	z := ZipfInts(rng, 1.3, 100)
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		v := z()
		if v < 1 || v > 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[50] {
		t.Errorf("zipf not skewed: count[1]=%d count[50]=%d", counts[1], counts[50])
	}
}

func TestTriangularRecentBoundsAndSkew(t *testing.T) {
	rng := NewRand(11)
	var older, newer int
	for i := 0; i < 10000; i++ {
		v := TriangularRecent(rng, 1880, 2019)
		if v < 1880 || v > 2019 {
			t.Fatalf("out of range: %d", v)
		}
		if v < 1950 {
			older++
		} else if v > 1990 {
			newer++
		}
	}
	if newer <= older {
		t.Errorf("expected recency skew, older=%d newer=%d", older, newer)
	}
}

func TestCategorical(t *testing.T) {
	rng := NewRand(17)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[Categorical(rng, []float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Errorf("categorical weights not respected: %v", counts)
	}
}

func tinyIMDb(t *testing.T) *db.DB {
	t.Helper()
	return IMDb(IMDbConfig{Seed: 1, Titles: 800, Keywords: 60, Companies: 40, Persons: 200})
}

func TestIMDbSchemaShape(t *testing.T) {
	d := tinyIMDb(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"title", "movie_companies", "cast_info", "movie_info",
		"movie_info_idx", "movie_keyword", "keyword", "company_name"} {
		if d.Table(tbl) == nil {
			t.Errorf("missing table %s", tbl)
		}
	}
	title := d.Table("title")
	if title.NumRows() != 800 {
		t.Errorf("title rows = %d, want 800", title.NumRows())
	}
	// Fact tables must be non-trivially populated.
	for _, tbl := range []string{"movie_companies", "cast_info", "movie_info", "movie_keyword"} {
		if d.Table(tbl).NumRows() < 400 {
			t.Errorf("table %s suspiciously small: %d rows", tbl, d.Table(tbl).NumRows())
		}
	}
}

func TestIMDbDeterminism(t *testing.T) {
	a := IMDb(IMDbConfig{Seed: 9, Titles: 300})
	b := IMDb(IMDbConfig{Seed: 9, Titles: 300})
	for _, tbl := range a.TableNames() {
		ta, tb := a.Table(tbl), b.Table(tbl)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("table %s row counts differ: %d vs %d", tbl, ta.NumRows(), tb.NumRows())
		}
		for _, col := range ta.ColumnNames() {
			ca, cb := ta.Column(col), tb.Column(col)
			for i := range ca.Vals {
				if ca.Vals[i] != cb.Vals[i] {
					t.Fatalf("table %s col %s row %d differs", tbl, col, i)
				}
			}
		}
	}
	c := IMDb(IMDbConfig{Seed: 10, Titles: 300})
	diff := false
	ca, cc := a.Table("title").Column("production_year"), c.Table("title").Column("production_year")
	for i := range ca.Vals {
		if ca.Vals[i] != cc.Vals[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical title years")
	}
}

func TestIMDbReferentialIntegrity(t *testing.T) {
	d := tinyIMDb(t)
	for _, fk := range d.FKs {
		src := d.Table(fk.Table).Column(fk.Column)
		ref := d.Table(fk.RefTable).Column(fk.RefColumn)
		refSet := make(map[int64]bool, len(ref.Vals))
		for _, v := range ref.Vals {
			refSet[v] = true
		}
		for i, v := range src.Vals {
			if !refSet[v] {
				t.Fatalf("dangling FK %s.%s row %d -> %d", fk.Table, fk.Column, i, v)
			}
		}
	}
}

func TestIMDbYearFanoutCorrelation(t *testing.T) {
	d := tinyIMDb(t)
	years := d.Table("title").Column("production_year").Vals
	mkPerTitle := make(map[int64]int)
	for _, m := range d.Table("movie_keyword").Column("movie_id").Vals {
		mkPerTitle[m]++
	}
	var oldSum, oldN, newSum, newN float64
	for i, y := range years {
		id := int64(i + 1)
		if y < 1950 {
			oldSum += float64(mkPerTitle[id])
			oldN++
		} else if y > 1995 {
			newSum += float64(mkPerTitle[id])
			newN++
		}
	}
	if oldN == 0 || newN == 0 {
		t.Skip("tiny dataset missing an era")
	}
	if newSum/newN <= oldSum/oldN {
		t.Errorf("keyword fanout should grow with year: old=%.2f new=%.2f", oldSum/oldN, newSum/newN)
	}
}

func TestIMDbKeywordEraCorrelation(t *testing.T) {
	// The named keyword "artificial-intelligence" (era center 2004) should
	// mostly appear on modern titles.
	d := IMDb(IMDbConfig{Seed: 2, Titles: 4000})
	kw := d.Table("keyword").Column("keyword")
	code, ok := kw.Lookup("artificial-intelligence")
	if !ok {
		t.Fatal("named keyword missing from dictionary")
	}
	kwID := code + 1 // ids are code+1 by construction
	years := d.Table("title").Column("production_year").Vals
	mk := d.Table("movie_keyword")
	movieIDs := mk.Column("movie_id").Vals
	kwIDs := mk.Column("keyword_id").Vals
	var modern, ancient int
	for i := range kwIDs {
		if kwIDs[i] != kwID {
			continue
		}
		y := years[movieIDs[i]-1]
		if y >= 1990 {
			modern++
		} else if y < 1970 {
			ancient++
		}
	}
	if modern+ancient == 0 {
		t.Skip("keyword unused at this scale")
	}
	if modern <= ancient*2 {
		t.Errorf("artificial-intelligence should skew modern: modern=%d ancient=%d", modern, ancient)
	}
}

func TestIMDbPredColumns(t *testing.T) {
	d := tinyIMDb(t)
	pcs := d.PredColumnsFor("title")
	if len(pcs) != 4 {
		t.Errorf("title pred columns = %d, want 4", len(pcs))
	}
	kw := d.PredColumnsFor("keyword")
	if len(kw) != 1 || len(kw[0].Ops) != 1 || kw[0].Ops[0] != db.OpEq {
		t.Errorf("keyword pred column should be eq-only, got %+v", kw)
	}
}

func TestTPCHSchemaShape(t *testing.T) {
	d := TPCH(TPCHConfig{Seed: 1, Orders: 1000})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"nation", "customer", "supplier", "part", "orders", "lineitem"} {
		if d.Table(tbl) == nil {
			t.Errorf("missing table %s", tbl)
		}
	}
	li := d.Table("lineitem").NumRows()
	if li < 1000 || li > 7000 {
		t.Errorf("lineitem rows = %d, want in [orders, 7*orders]", li)
	}
}

func TestTPCHShipdateAfterOrderdate(t *testing.T) {
	d := TPCH(TPCHConfig{Seed: 4, Orders: 800})
	ordDate := d.Table("orders").Column("orderdate").Vals
	li := d.Table("lineitem")
	orderIDs := li.Column("order_id").Vals
	shipDates := li.Column("shipdate").Vals
	for i := range orderIDs {
		od := ordDate[orderIDs[i]-1]
		if shipDates[i] <= od {
			t.Fatalf("lineitem %d ships (%d) before its order (%d)", i, shipDates[i], od)
		}
	}
}

func TestTPCHReferentialIntegrity(t *testing.T) {
	d := TPCH(TPCHConfig{Seed: 5, Orders: 500})
	for _, fk := range d.FKs {
		src := d.Table(fk.Table).Column(fk.Column)
		ref := d.Table(fk.RefTable).Column(fk.RefColumn)
		refSet := make(map[int64]bool, len(ref.Vals))
		for _, v := range ref.Vals {
			refSet[v] = true
		}
		for i, v := range src.Vals {
			if !refSet[v] {
				t.Fatalf("dangling FK %s.%s row %d -> %d", fk.Table, fk.Column, i, v)
			}
		}
	}
}

func TestTPCHDeterminism(t *testing.T) {
	a := TPCH(TPCHConfig{Seed: 42, Orders: 300})
	b := TPCH(TPCHConfig{Seed: 42, Orders: 300})
	ta, tb := a.Table("lineitem"), b.Table("lineitem")
	if ta.NumRows() != tb.NumRows() {
		t.Fatalf("row counts differ")
	}
	ca, cb := ta.Column("shipdate"), tb.Column("shipdate")
	for i := range ca.Vals {
		if ca.Vals[i] != cb.Vals[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}
