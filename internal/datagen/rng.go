// Package datagen builds the synthetic datasets the reproduction runs on.
// The paper demonstrates on the real IMDb snapshot ("a real-world dataset
// that contains many correlations and therefore proves to be very
// challenging for cardinality estimators") and TPC-H. Neither is available
// offline, so this package generates schema-compatible substitutes whose
// difficulty comes from the same two sources: heavy skew (zipfian
// popularity) and cross-column/cross-table correlation (era-dependent
// keywords and companies, year-dependent fanouts, date ordering in TPC-H).
// All generation is deterministic given a seed.
package datagen

import (
	"math"
	"math/rand"
)

// splitmix64 is a tiny, well-understood 64-bit PRNG used as the seed
// expander and rand.Source64 for all generators, keeping every dataset
// bit-for-bit reproducible and independent of math/rand's default source.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed implements rand.Source.
func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// Int63 implements rand.Source.
func (s *splitmix64) Int63() int64 { return int64(s.next() >> 1) }

// Uint64 implements rand.Source64.
func (s *splitmix64) Uint64() uint64 { return s.next() }

// NewRand returns a deterministic *rand.Rand backed by splitmix64.
func NewRand(seed int64) *rand.Rand {
	src := &splitmix64{}
	src.Seed(seed)
	return rand.New(src)
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method (fine for the small means used for fanouts).
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological means
			return k
		}
	}
}

// ZipfInts returns a sampler producing values in [1, n] with zipfian skew s
// (s > 1). Rank 1 is the most popular value.
func ZipfInts(rng *rand.Rand, s float64, n int64) func() int64 {
	if n < 1 {
		n = 1
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int64 { return int64(z.Uint64()) + 1 }
}

// TriangularRecent draws an integer in [lo, hi] with linearly increasing
// density toward hi — used for production years, where recent years have
// many more titles.
func TriangularRecent(rng *rand.Rand, lo, hi int64) int64 {
	span := float64(hi - lo)
	return lo + int64(span*math.Sqrt(rng.Float64())+0.5)
}

// Categorical draws an index from unnormalized weights.
func Categorical(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}
