package datagen

import (
	"fmt"

	"deepsketch/internal/db"
)

// IMDbConfig controls the synthetic IMDb-like dataset. Zero values are
// replaced by defaults sized for a 2-core evaluation run (~300k total rows).
type IMDbConfig struct {
	Seed int64
	// Titles is the number of rows in the central title table; fact table
	// sizes scale with it via per-title fanouts.
	Titles int
	// Keywords and Companies size the joinable dimension tables.
	Keywords  int
	Companies int
	// Persons is the domain size of cast_info.person_id.
	Persons int
}

func (c IMDbConfig) withDefaults() IMDbConfig {
	if c.Titles == 0 {
		c.Titles = 20000
	}
	if c.Keywords == 0 {
		c.Keywords = max(120, c.Titles/25)
	}
	if c.Companies == 0 {
		c.Companies = max(80, c.Titles/40)
	}
	if c.Persons == 0 {
		c.Persons = max(500, c.Titles/2)
	}
	return c
}

// Named keywords seeded into the dictionary so the demo's template query
// ("k.keyword='artificial-intelligence' AND t.production_year=?") works
// verbatim. Each has an era center: the year around which titles carry it.
var namedKeywords = []struct {
	name   string
	center int64
	width  float64
	boost  float64
}{
	{"artificial-intelligence", 2004, 12, 3.0},
	{"superhero", 2010, 8, 2.5},
	{"world-war-ii", 1950, 15, 2.0},
	{"film-noir", 1948, 10, 1.5},
	{"space-opera", 1995, 20, 1.2},
	{"love", 1960, 80, 3.5}, // effectively era-free
}

const (
	imdbMinYear = 1880
	imdbMaxYear = 2019
)

// IMDb generates the synthetic IMDb-like database. Schema (PK/FK edges form
// a tree, as the demo's auto-join feature requires):
//
//	title(id, kind_id, production_year, season_nr, episode_nr)
//	movie_companies(id, movie_id->title, company_id->company_name, company_type_id)
//	cast_info(id, movie_id->title, person_id, role_id)
//	movie_info(id, movie_id->title, info_type_id)
//	movie_info_idx(id, movie_id->title, info_type_id)
//	movie_keyword(id, movie_id->title, keyword_id->keyword)
//	keyword(id, keyword)
//	company_name(id, country_code)
//
// Injected correlations (what makes real IMDb hard):
//   - production_year is skewed toward the present; kind_id depends on the
//     era (tv kinds are modern).
//   - every per-title fanout (companies, info, keywords, cast) grows with
//     production_year, so joins correlate with year predicates;
//   - keywords and companies have zipfian popularity and era affinity: a
//     keyword appears mostly on titles near its era center.
func IMDb(cfg IMDbConfig) *db.DB {
	cfg = cfg.withDefaults()
	rng := NewRand(cfg.Seed ^ 0x1adb)

	d := db.NewDB("imdb")

	// --- keyword dimension ---
	kwDict := make([]string, cfg.Keywords)
	kwCenter := make([]int64, cfg.Keywords)
	kwWidth := make([]float64, cfg.Keywords)
	kwBoost := make([]float64, cfg.Keywords)
	for i := 0; i < cfg.Keywords; i++ {
		if i < len(namedKeywords) {
			nk := namedKeywords[i]
			kwDict[i] = nk.name
			kwCenter[i] = nk.center
			kwWidth[i] = nk.width
			kwBoost[i] = nk.boost
		} else {
			kwDict[i] = fmt.Sprintf("keyword-%04d", i)
			kwCenter[i] = imdbMinYear + 20 + rng.Int63n(imdbMaxYear-imdbMinYear-20)
			kwWidth[i] = 6 + rng.Float64()*30
			kwBoost[i] = 1
		}
	}
	kwIDs := make([]int64, cfg.Keywords)
	kwCodes := make([]int64, cfg.Keywords)
	for i := range kwIDs {
		kwIDs[i] = int64(i + 1)
		kwCodes[i] = int64(i)
	}
	d.MustAddTable(db.MustNewTable("keyword",
		db.NewIntColumn("id", kwIDs),
		db.NewStringColumn("keyword", kwCodes, kwDict),
	))

	// --- company dimension ---
	countries := []string{"[us]", "[gb]", "[de]", "[fr]", "[jp]", "[it]", "[in]", "[ca]", "[es]", "[se]",
		"[nl]", "[dk]", "[au]", "[br]", "[mx]", "[ru]", "[cn]", "[kr]", "[pl]", "[ar]"}
	compIDs := make([]int64, cfg.Companies)
	compCountry := make([]int64, cfg.Companies)
	compCenter := make([]int64, cfg.Companies)
	countryZipf := ZipfInts(rng, 1.4, int64(len(countries)))
	for i := 0; i < cfg.Companies; i++ {
		compIDs[i] = int64(i + 1)
		compCountry[i] = countryZipf() - 1
		compCenter[i] = imdbMinYear + 30 + rng.Int63n(imdbMaxYear-imdbMinYear-30)
	}
	d.MustAddTable(db.MustNewTable("company_name",
		db.NewIntColumn("id", compIDs),
		db.NewStringColumn("country_code", compCountry, countries),
	))

	// --- title ---
	n := cfg.Titles
	tIDs := make([]int64, n)
	tKind := make([]int64, n)
	tYear := make([]int64, n)
	tSeason := make([]int64, n)
	tEpisode := make([]int64, n)
	seasonZipf := ZipfInts(rng, 1.6, 15)
	for i := 0; i < n; i++ {
		tIDs[i] = int64(i + 1)
		var year int64
		if rng.Float64() < 0.25 {
			year = imdbMinYear + rng.Int63n(imdbMaxYear-imdbMinYear+1)
		} else {
			year = TriangularRecent(rng, imdbMinYear, imdbMaxYear)
		}
		tYear[i] = year
		recency := float64(year-imdbMinYear) / float64(imdbMaxYear-imdbMinYear)
		// kinds: 1 movie, 2 short, 3 tv movie, 4 tv series, 5 video, 6 video game, 7 episode.
		weights := []float64{
			5.0,                        // movie: always common
			1.0 + recency*0.5,          // short
			0.2 + recency*1.0,          // tv movie (modern)
			0.2 + recency*1.5,          // tv series (modern)
			0.1 + recency*1.2,          // video (modern)
			0.02 + recency*recency*0.9, // video game (very modern)
			0.3 + recency*recency*4.0,  // episode (dominates recently)
		}
		kind := int64(Categorical(rng, weights) + 1)
		tKind[i] = kind
		if kind == 4 || kind == 7 {
			tSeason[i] = seasonZipf()
			tEpisode[i] = 1 + rng.Int63n(24)
		}
	}
	d.MustAddTable(db.MustNewTable("title",
		db.NewIntColumn("id", tIDs),
		db.NewIntColumn("kind_id", tKind),
		db.NewIntColumn("production_year", tYear),
		db.NewIntColumn("season_nr", tSeason),
		db.NewIntColumn("episode_nr", tEpisode),
	))

	// --- fact tables hanging off title ---
	recencyOf := func(i int) float64 {
		return float64(tYear[i]-imdbMinYear) / float64(imdbMaxYear-imdbMinYear)
	}
	// Fanouts grow superlinearly with recency (real IMDb metadata coverage
	// explodes for modern titles: a 2015 release has an order of magnitude
	// more cast/keyword/info rows than a 1920s one). This is the
	// cross-table correlation that makes joined year predicates hard for
	// independence-based estimators.
	fanout := func(i int, base, amp float64) float64 {
		r := recencyOf(i)
		return base + amp*r*r
	}
	// eraShifted draws a categorical id in [1, n] whose typical value
	// drifts with the title's era: old titles use low ids, modern titles
	// high ids, with zipfian popularity inside the era window. It models
	// attributes like info_type ("color" vs "votes"/"rating") whose usage
	// changed over IMDb's history, creating predicate↔join correlations.
	eraShifted := func(zipfDraw func() int64, n int64, recency float64) int64 {
		if rng.Float64() < 0.7 {
			// Window center moves with recency; width n/3.
			center := 1 + int64(recency*float64(n-1))
			for tries := 0; tries < 12; tries++ {
				// Draw an offset from the zipf (popular = close to center).
				off := zipfDraw() - 1
				var v int64
				if rng.Intn(2) == 0 {
					v = center + off
				} else {
					v = center - off
				}
				if v >= 1 && v <= n {
					return v
				}
			}
		}
		return 1 + rng.Int63n(n)
	}

	// movie_companies
	var mcMovie, mcCompany, mcType []int64
	compZipf := ZipfInts(rng, 1.15, int64(cfg.Companies))
	pickCompany := func(year int64) int64 {
		// Era affinity: prefer companies whose center is near the title year.
		if rng.Float64() < 0.55 {
			for tries := 0; tries < 16; tries++ {
				c := compZipf()
				if abs64(compCenter[c-1]-year) <= 25 {
					return c
				}
			}
		}
		return compZipf()
	}
	for i := 0; i < n; i++ {
		k := Poisson(rng, fanout(i, 0.35, 3.2))
		rec := recencyOf(i)
		for j := 0; j < k; j++ {
			comp := pickCompany(tYear[i])
			mcMovie = append(mcMovie, tIDs[i])
			mcCompany = append(mcCompany, comp)
			// company_type correlates with the era (older titles carry
			// production credits only; modern ones add distributors, VFX,
			// and misc companies) and with company popularity.
			var typ int64
			if comp <= int64(cfg.Companies/10+1) {
				typ = int64(Categorical(rng, []float64{6, 3, 0.5, 0.5}) + 1)
			} else {
				typ = int64(Categorical(rng, []float64{
					4 - 2*rec, 1 + rec, 0.3 + 1.7*rec, 0.2 + 1.8*rec}) + 1)
			}
			mcType = append(mcType, typ)
		}
	}
	d.MustAddTable(db.MustNewTable("movie_companies",
		db.NewIntColumn("id", seq(len(mcMovie))),
		db.NewIntColumn("movie_id", mcMovie),
		db.NewIntColumn("company_id", mcCompany),
		db.NewIntColumn("company_type_id", mcType),
	))

	// cast_info
	var ciMovie, ciPerson, ciRole []int64
	personZipf := ZipfInts(rng, 1.1, int64(cfg.Persons))
	for i := 0; i < n; i++ {
		k := Poisson(rng, fanout(i, 0.7, 4.6))
		rec := recencyOf(i)
		for j := 0; j < k; j++ {
			ciMovie = append(ciMovie, tIDs[i])
			ciPerson = append(ciPerson, personZipf())
			// roles: actor(1)/actress(2) dominate everywhere; crew roles
			// (editor, production designer, ...) are a modern-era
			// phenomenon in the credits data.
			var role int64
			if j < 2 {
				role = int64(Categorical(rng, []float64{5, 4, 0.5, 0.5, 0.3, 0.2}) + 1)
			} else {
				role = int64(Categorical(rng, []float64{
					3, 2.5,
					0.2 + 1.8*rec, 0.2 + 1.8*rec, 0.1 + 1.4*rec, 0.1 + 1.4*rec,
					0.05 + rec, 0.05 + rec, 0.02 + 0.6*rec, 0.02 + 0.6*rec,
					0.01 + 0.4*rec, 0.01 + 0.4*rec}) + 1)
			}
			ciRole = append(ciRole, role)
		}
	}
	d.MustAddTable(db.MustNewTable("cast_info",
		db.NewIntColumn("id", seq(len(ciMovie))),
		db.NewIntColumn("movie_id", ciMovie),
		db.NewIntColumn("person_id", ciPerson),
		db.NewIntColumn("role_id", ciRole),
	))

	// movie_info: info types are strongly era-shifted (black-and-white era
	// types vs modern "votes"/"rating"/"taglines" types).
	var miMovie, miType []int64
	infoZipf := ZipfInts(rng, 1.4, 40)
	for i := 0; i < n; i++ {
		k := Poisson(rng, fanout(i, 0.6, 4.0))
		rec := recencyOf(i)
		for j := 0; j < k; j++ {
			miMovie = append(miMovie, tIDs[i])
			miType = append(miType, eraShifted(infoZipf, 40, rec))
		}
	}
	d.MustAddTable(db.MustNewTable("movie_info",
		db.NewIntColumn("id", seq(len(miMovie))),
		db.NewIntColumn("movie_id", miMovie),
		db.NewIntColumn("info_type_id", miType),
	))

	// movie_info_idx (ratings-style: modern titles have far more, and the
	// type mix is era-shifted too)
	var mixMovie, mixType []int64
	idxZipf := ZipfInts(rng, 1.5, 10)
	for i := 0; i < n; i++ {
		k := Poisson(rng, fanout(i, 0.15, 2.4))
		rec := recencyOf(i)
		for j := 0; j < k; j++ {
			mixMovie = append(mixMovie, tIDs[i])
			mixType = append(mixType, eraShifted(idxZipf, 10, rec))
		}
	}
	d.MustAddTable(db.MustNewTable("movie_info_idx",
		db.NewIntColumn("id", seq(len(mixMovie))),
		db.NewIntColumn("movie_id", mixMovie),
		db.NewIntColumn("info_type_id", mixType),
	))

	// movie_keyword with era-affine keywords. Popularity is zipfian with a
	// moderate exponent (the head keyword of real IMDb covers a percent or
	// two of movie_keyword, not a quarter), and the popularity ranking is
	// decoupled from dictionary order: named keywords land on mid-range
	// ranks so the demo template probes a realistic keyword, not the
	// global maximum.
	var mkMovie, mkKeyword []int64
	rankToKw := make([]int64, cfg.Keywords) // zipf rank (0-based) -> keyword id
	for i := range rankToKw {
		rankToKw[i] = int64(i + 1)
	}
	for i := range namedKeywords {
		if i >= cfg.Keywords {
			break
		}
		target := 7 + i*7 // ranks 8, 15, 22, ... (1-based)
		if target >= cfg.Keywords {
			target = cfg.Keywords - 1
		}
		rankToKw[i], rankToKw[target] = rankToKw[target], rankToKw[i]
	}
	kwZipf := ZipfInts(rng, 1.1, int64(cfg.Keywords))
	drawKw := func() int64 { return rankToKw[kwZipf()-1] }
	pickKeyword := func(year int64) int64 {
		if rng.Float64() < 0.6 {
			for tries := 0; tries < 16; tries++ {
				k := drawKw()
				dist := float64(abs64(kwCenter[k-1] - year))
				if dist <= kwWidth[k-1]*(1+kwBoost[k-1]*rng.Float64()) {
					return k
				}
			}
		}
		return drawKw()
	}
	for i := 0; i < n; i++ {
		k := Poisson(rng, fanout(i, 0.3, 4.4))
		for j := 0; j < k; j++ {
			mkMovie = append(mkMovie, tIDs[i])
			mkKeyword = append(mkKeyword, pickKeyword(tYear[i]))
		}
	}
	d.MustAddTable(db.MustNewTable("movie_keyword",
		db.NewIntColumn("id", seq(len(mkMovie))),
		db.NewIntColumn("movie_id", mkMovie),
		db.NewIntColumn("keyword_id", mkKeyword),
	))

	// --- keys and metadata ---
	for _, tbl := range []string{"title", "keyword", "company_name", "movie_companies", "cast_info", "movie_info", "movie_info_idx", "movie_keyword"} {
		d.SetPK(tbl, "id")
	}
	d.AddFK("movie_companies", "movie_id", "title", "id")
	d.AddFK("cast_info", "movie_id", "title", "id")
	d.AddFK("movie_info", "movie_id", "title", "id")
	d.AddFK("movie_info_idx", "movie_id", "title", "id")
	d.AddFK("movie_keyword", "movie_id", "title", "id")
	d.AddFK("movie_keyword", "keyword_id", "keyword", "id")
	d.AddFK("movie_companies", "company_id", "company_name", "id")

	d.AddPredColumn("title", "kind_id")
	d.AddPredColumn("title", "production_year")
	d.AddPredColumn("title", "season_nr")
	d.AddPredColumn("title", "episode_nr")
	d.AddPredColumn("movie_companies", "company_id")
	d.AddPredColumn("movie_companies", "company_type_id")
	d.AddPredColumn("cast_info", "role_id")
	d.AddPredColumn("cast_info", "person_id", db.OpEq)
	d.AddPredColumn("movie_info", "info_type_id")
	d.AddPredColumn("movie_info_idx", "info_type_id")
	d.AddPredColumn("movie_keyword", "keyword_id")
	d.AddPredColumn("keyword", "keyword") // string: eq only
	d.AddPredColumn("company_name", "country_code")

	if err := d.Validate(); err != nil {
		panic("datagen: imdb schema invalid: " + err.Error())
	}
	return d
}

func seq(n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = int64(i + 1)
	}
	return s
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
