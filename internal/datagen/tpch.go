package datagen

import "deepsketch/internal/db"

// TPCHConfig controls the synthetic TPC-H-like dataset. Zero values get
// defaults (~100k total rows).
type TPCHConfig struct {
	Seed int64
	// Orders is the orders row count; lineitem scales with it (1..7 lines
	// per order, TPC-H's distribution).
	Orders    int
	Customers int
	Parts     int
	Suppliers int
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.Orders == 0 {
		c.Orders = 15000
	}
	if c.Customers == 0 {
		c.Customers = max(150, c.Orders/10)
	}
	if c.Parts == 0 {
		c.Parts = max(200, c.Orders/8)
	}
	if c.Suppliers == 0 {
		c.Suppliers = max(10, c.Orders/150)
	}
	return c
}

// Dates are stored as day offsets from 1992-01-01, the TPC-H epoch; the
// range spans seven years like the benchmark's.
const tpchMaxDate = 7 * 365

// TPCH generates the synthetic TPC-H-like database. Schema (FK edges form a
// tree; nation is reachable only via customer so that auto-joins stay
// acyclic):
//
//	nation(id, region_id)
//	customer(id, nation_id->nation, mktsegment)
//	orders(id, cust_id->customer, orderdate, orderstatus, totalprice_bucket)
//	lineitem(id, order_id->orders, part_id->part, supp_id->supplier,
//	         quantity, shipdate, discount, returnflag, shipmode)
//	part(id, brand, size, container)
//	supplier(id, nation_id)
//
// Correlations: shipdate = orderdate + small delta (so shipdate predicates
// correlate with the joined orders' dates); orderstatus is 'F'inished for
// old orders and 'O'pen for recent ones; returnflag correlates with
// shipdate age. Brands and segments are zipfian.
func TPCH(cfg TPCHConfig) *db.DB {
	cfg = cfg.withDefaults()
	rng := NewRand(cfg.Seed ^ 0x7c9)

	d := db.NewDB("tpch")

	// nation
	const nations = 25
	natIDs := seq(nations)
	natRegion := make([]int64, nations)
	for i := range natRegion {
		natRegion[i] = int64(i % 5)
	}
	d.MustAddTable(db.MustNewTable("nation",
		db.NewIntColumn("id", natIDs),
		db.NewIntColumn("region_id", natRegion),
	))

	// customer
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	custIDs := seq(cfg.Customers)
	custNation := make([]int64, cfg.Customers)
	custSegment := make([]int64, cfg.Customers)
	natZipf := ZipfInts(rng, 1.2, nations)
	for i := 0; i < cfg.Customers; i++ {
		custNation[i] = natZipf()
		custSegment[i] = int64(Categorical(rng, []float64{3, 2.5, 2, 1.5, 1}))
	}
	d.MustAddTable(db.MustNewTable("customer",
		db.NewIntColumn("id", custIDs),
		db.NewIntColumn("nation_id", custNation),
		db.NewStringColumn("mktsegment", custSegment, segments),
	))

	// supplier
	suppIDs := seq(cfg.Suppliers)
	suppNation := make([]int64, cfg.Suppliers)
	for i := 0; i < cfg.Suppliers; i++ {
		suppNation[i] = 1 + rng.Int63n(nations)
	}
	d.MustAddTable(db.MustNewTable("supplier",
		db.NewIntColumn("id", suppIDs),
		db.NewIntColumn("nation_id", suppNation),
	))

	// part
	partIDs := seq(cfg.Parts)
	partBrand := make([]int64, cfg.Parts)
	partSize := make([]int64, cfg.Parts)
	partContainer := make([]int64, cfg.Parts)
	brandZipf := ZipfInts(rng, 1.15, 25)
	for i := 0; i < cfg.Parts; i++ {
		brand := brandZipf()
		partBrand[i] = brand
		// size correlates with brand: premium (low-id) brands skew small.
		if brand <= 5 {
			partSize[i] = 1 + rng.Int63n(20)
		} else {
			partSize[i] = 1 + rng.Int63n(50)
		}
		partContainer[i] = 1 + rng.Int63n(40)
	}
	d.MustAddTable(db.MustNewTable("part",
		db.NewIntColumn("id", partIDs),
		db.NewIntColumn("brand", partBrand),
		db.NewIntColumn("size", partSize),
		db.NewIntColumn("container", partContainer),
	))

	// orders
	ordIDs := seq(cfg.Orders)
	ordCust := make([]int64, cfg.Orders)
	ordDate := make([]int64, cfg.Orders)
	ordStatus := make([]int64, cfg.Orders)
	ordPrice := make([]int64, cfg.Orders)
	statusDict := []string{"F", "O", "P"}
	custZipf := ZipfInts(rng, 1.05, int64(cfg.Customers))
	for i := 0; i < cfg.Orders; i++ {
		ordCust[i] = custZipf()
		date := rng.Int63n(tpchMaxDate + 1)
		ordDate[i] = date
		// Old orders finished, recent open, a sliver pending.
		cutoff := int64(tpchMaxDate - 200)
		switch {
		case date < cutoff:
			ordStatus[i] = 0
		case rng.Float64() < 0.1:
			ordStatus[i] = 2
		default:
			ordStatus[i] = 1
		}
		ordPrice[i] = 1 + rng.Int63n(40) // price bucket in [1, 40]
	}
	d.MustAddTable(db.MustNewTable("orders",
		db.NewIntColumn("id", ordIDs),
		db.NewIntColumn("cust_id", ordCust),
		db.NewIntColumn("orderdate", ordDate),
		db.NewStringColumn("orderstatus", ordStatus, statusDict),
		db.NewIntColumn("totalprice_bucket", ordPrice),
	))

	// lineitem
	var liOrder, liPart, liSupp, liQty, liShip, liDisc, liFlag, liMode []int64
	flagDict := []string{"N", "R", "A"}
	modeCount := int64(7)
	partZipf := ZipfInts(rng, 1.1, int64(cfg.Parts))
	for i := 0; i < cfg.Orders; i++ {
		lines := 1 + rng.Int63n(7)
		for j := int64(0); j < lines; j++ {
			liOrder = append(liOrder, ordIDs[i])
			liPart = append(liPart, partZipf())
			liSupp = append(liSupp, 1+rng.Int63n(int64(cfg.Suppliers)))
			liQty = append(liQty, 1+rng.Int63n(50))
			ship := ordDate[i] + 1 + rng.Int63n(121) // shipdate > orderdate, correlated
			liShip = append(liShip, ship)
			liDisc = append(liDisc, rng.Int63n(11))
			// Returnflag: old shipments resolved (R/A), recent ones N.
			if ship < tpchMaxDate-365 && rng.Float64() < 0.5 {
				liFlag = append(liFlag, 1+rng.Int63n(2))
			} else {
				liFlag = append(liFlag, 0)
			}
			liMode = append(liMode, 1+rng.Int63n(modeCount))
		}
	}
	d.MustAddTable(db.MustNewTable("lineitem",
		db.NewIntColumn("id", seq(len(liOrder))),
		db.NewIntColumn("order_id", liOrder),
		db.NewIntColumn("part_id", liPart),
		db.NewIntColumn("supp_id", liSupp),
		db.NewIntColumn("quantity", liQty),
		db.NewIntColumn("shipdate", liShip),
		db.NewIntColumn("discount", liDisc),
		db.NewStringColumn("returnflag", liFlag, flagDict),
		db.NewIntColumn("shipmode", liMode),
	))

	for _, tbl := range []string{"nation", "customer", "supplier", "part", "orders", "lineitem"} {
		d.SetPK(tbl, "id")
	}
	d.AddFK("customer", "nation_id", "nation", "id")
	d.AddFK("orders", "cust_id", "customer", "id")
	d.AddFK("lineitem", "order_id", "orders", "id")
	d.AddFK("lineitem", "part_id", "part", "id")
	d.AddFK("lineitem", "supp_id", "supplier", "id")

	d.AddPredColumn("nation", "region_id")
	d.AddPredColumn("customer", "mktsegment")
	d.AddPredColumn("orders", "orderdate")
	d.AddPredColumn("orders", "orderstatus")
	d.AddPredColumn("orders", "totalprice_bucket")
	d.AddPredColumn("lineitem", "quantity")
	d.AddPredColumn("lineitem", "shipdate")
	d.AddPredColumn("lineitem", "discount")
	d.AddPredColumn("lineitem", "returnflag")
	d.AddPredColumn("lineitem", "shipmode")
	d.AddPredColumn("part", "brand")
	d.AddPredColumn("part", "size")
	d.AddPredColumn("part", "container")

	if err := d.Validate(); err != nil {
		panic("datagen: tpch schema invalid: " + err.Error())
	}
	return d
}
