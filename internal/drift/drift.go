// Package drift closes the refresh loop the lifecycle registry opened: it
// watches the live q-error of serving sketches and turns sustained
// degradation into automatic warm-start refreshes rolled out behind a
// canary.
//
// The paper builds a Deep Sketch once from a database snapshot and leaves
// retraining to the operator; adaptive-input analyses of cardinality
// sketches (Ahmadian & Cohen, 2024) show why that is not enough — as the
// workload shifts away from the training distribution, a sketch degrades
// quietly, with no error signal in its own outputs. The only way to notice
// is to compare estimates against ground truth on a sample of live traffic.
//
// # Monitor
//
// A Monitor taps the serving path (Observe, or wrap a backend with the
// Observe middleware), samples every Nth estimate per sketch, and obtains
// the true cardinality asynchronously from an ActualsSource — classically
// the exact Truth executor (EstimatorSource), but the source is a seam:
// with a nil source the monitor runs without any exact executor at all,
// parking each sampled estimate as *pending* until a logged actual
// arrives out of band (ResolveActual) from a client that ran the query
// for real. Each resolved query's q-error lands in a rolling window per
// (sketch, version); when the windowed median or p95 exceeds its
// threshold, or a staleness clock expires, the monitor fires a trigger
// (subject to a cooldown). Every pending/resolved transition is reported
// to an optional Journal — the daemon points it at the observation WAL,
// and rebuilds windows and the pending queue by replay after a restart.
//
// # Controller
//
// A Controller subscribes to those triggers and drives the lifecycle
// registry: warm-start refresh on a delta workload, install the result as
// a canary at a configured traffic fraction, then judge the canary by
// comparative windowed q-error — the same monitor windows, one per
// version — and promote it to 100% or abort it. Every transition is
// reported through an event hook so a daemon can log and persist it.
package drift

import (
	"container/list"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/metrics"
)

// Reason describes why a drift trigger fired.
type Reason struct {
	// Kind is "median", "p95" or "staleness" — or "adopted" on a cycle the
	// controller adopted rather than triggered (Controller.AdoptCanary).
	Kind string `json:"kind"`
	// Version is the sketch version whose window tripped (0 for staleness).
	Version int `json:"version,omitempty"`
	// Value is the observed windowed statistic (or the staleness age in
	// seconds).
	Value float64 `json:"value"`
	// Threshold is the configured limit the value exceeded.
	Threshold float64 `json:"threshold"`
}

func (r Reason) String() string {
	return fmt.Sprintf("%s %.3g > %.3g (v%d)", r.Kind, r.Value, r.Threshold, r.Version)
}

// Config parameterizes a Monitor.
type Config struct {
	// SampleEvery samples one of every N observed estimates per sketch for
	// ground-truthing (default 10, i.e. 10% of traffic; 1 samples all).
	// Negative disables sampling entirely — estimates are counted but
	// never ground-truthed, for deployments where even sampled exact
	// counting is too expensive.
	SampleEvery int
	// Window is the rolling q-error window capacity per (sketch, version)
	// (default 256).
	Window int
	// MinSamples is the window fill required before the q-error thresholds
	// are evaluated (default 32).
	MinSamples int
	// MaxMedianQ fires a trigger when the windowed median q-error exceeds
	// it (0 disables).
	MaxMedianQ float64
	// MaxP95Q fires a trigger when the windowed p95 q-error exceeds it
	// (0 disables).
	MaxP95Q float64
	// MaxStaleness fires a trigger when a sketch has gone this long without
	// a refresh, regardless of q-error (0 disables). Checked by
	// CheckStaleness, which the controller's Tick (or any timer) drives.
	MaxStaleness time.Duration
	// Cooldown is the minimum gap between triggers for one sketch
	// (default 1 minute).
	Cooldown time.Duration
	// QueueSize bounds the pending ground-truth queue; estimates sampled
	// while it is full are dropped and counted (default 1024). It also
	// bounds the parked-pending table of observations awaiting out-of-band
	// actuals, evicting oldest-first.
	QueueSize int
	// Journal, when set, receives every pending/resolved transition so it
	// can be made durable (the daemon passes the observation WAL).
	Journal Journal
}

func (c Config) withDefaults() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = 10
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	return c
}

// maxVersionWindows bounds how many per-version q-error windows one
// sketch retains — enough for a canary comparison plus recent rollback
// candidates.
const maxVersionWindows = 4

// observation is one sampled estimate awaiting ground truth.
type observation struct {
	name     string
	version  int
	q        db.Query
	estimate float64
}

// versionWindow is one (sketch, version)'s rolling q-error record.
type versionWindow struct {
	win     *metrics.Window
	samples uint64 // lifetime ground-truthed samples for this version
}

// nameState is one sketch's monitoring state. The sampling counters are
// atomics touched on the serving path; everything else is cold-path state
// guarded by the monitor mutex.
type nameState struct {
	observed atomic.Uint64 // estimates seen (sampling denominator)
	sampled  atomic.Uint64 // estimates enqueued for ground truth

	// The fields below are guarded by Monitor.mu.
	windows     map[int]*versionWindow
	lastTrigger time.Time
	lastFired   Reason
	hasFired    bool
	lastRefresh time.Time // staleness clock origin (first seen / MarkRefreshed)
}

// Monitor samples live estimates, ground-truths them asynchronously, and
// fires triggers when a sketch's windowed q-error degrades or its
// staleness clock expires. Safe for concurrent use; Observe — the call on
// the serving path — touches only per-name atomics and a channel send,
// never the monitor mutex.
type Monitor struct {
	cfg     Config
	source  ActualsSource
	journal Journal

	names sync.Map // string → *nameState

	mu           sync.Mutex // guards cold-path nameState fields, onTrig, pending
	onTrig       func(name string, r Reason)
	pending      map[pendingKey]*list.Element
	pendingOrder *list.List // front = oldest; values are *pendingObs

	queue          chan observation
	dropped        atomic.Uint64
	truthErrs      atomic.Uint64
	unmatched      atomic.Uint64 // ResolveActual calls with no parked match
	pendingEvicted atomic.Uint64 // parked observations evicted at capacity
	badSamples     atomic.Uint64 // resolved pairs with a non-finite q-error, dropped
}

// NewMonitor returns a monitor that obtains ground truth from truth — the
// exact executor (estimator.Truth), a statistics estimator, or logged
// actuals behind estimator.Func. A nil truth runs the monitor without any
// in-process ground truth: every sampled estimate parks as pending until
// ResolveActual reports the observed actual. Call Run (or Drain, in
// tests) to process sampled queries; set the trigger handler with
// OnTrigger.
func NewMonitor(cfg Config, truth estimator.Estimator) *Monitor {
	return NewMonitorSource(cfg, EstimatorSource(truth))
}

// NewMonitorSource is NewMonitor with an explicit ActualsSource.
func NewMonitorSource(cfg Config, src ActualsSource) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:          cfg,
		source:       src,
		journal:      cfg.Journal,
		pending:      make(map[pendingKey]*list.Element),
		pendingOrder: list.New(),
		queue:        make(chan observation, cfg.QueueSize),
	}
}

// OnTrigger installs the trigger handler. The handler is called without
// internal locks held and may call back into the monitor; it must not
// block for long, or ground-truth processing stalls behind it.
func (m *Monitor) OnTrigger(fn func(name string, r Reason)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onTrig = fn
}

// Observe reports one served estimate: the answering sketch's name and
// version, the query, and the estimated cardinality. Every SampleEvery-th
// estimate per name is queued for asynchronous ground-truthing; the rest
// are counted and dropped. Call it from the serving path (the Observe
// middleware does) — it bumps per-name atomics and does a non-blocking
// channel send; it never takes a lock or blocks on ground truth.
func (m *Monitor) Observe(name string, version int, q db.Query, estimate float64) {
	ns := m.state(name)
	if n := ns.observed.Add(1); m.cfg.SampleEvery < 0 || n%uint64(m.cfg.SampleEvery) != 0 {
		return
	}
	ns.sampled.Add(1)
	select {
	case m.queue <- observation{name: name, version: version, q: q, estimate: estimate}:
	default:
		m.dropped.Add(1)
	}
}

// state returns (creating if needed) the state for name.
func (m *Monitor) state(name string) *nameState {
	if ns, ok := m.names.Load(name); ok {
		return ns.(*nameState)
	}
	fresh := &nameState{windows: make(map[int]*versionWindow), lastRefresh: time.Now()}
	ns, _ := m.names.LoadOrStore(name, fresh)
	return ns.(*nameState)
}

// MarkRefreshed resets name's staleness clock — call when a refresh lands
// (the Controller does).
func (m *Monitor) MarkRefreshed(name string) {
	ns := m.state(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ns.lastRefresh = time.Now()
}

// Run processes sampled queries until ctx is done: each is executed
// against the ground-truth estimator and its q-error recorded, firing
// triggers as thresholds trip. Run one goroutine per monitor.
func (m *Monitor) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case obs := <-m.queue:
			m.process(ctx, obs)
		}
	}
}

// Drain synchronously processes every queued observation and returns how
// many it processed — the deterministic alternative to Run for tests and
// single-shot evaluation.
func (m *Monitor) Drain(ctx context.Context) int {
	n := 0
	for {
		select {
		case obs := <-m.queue:
			m.process(ctx, obs)
			n++
		default:
			return n
		}
	}
}

// process resolves one observation against the actuals source: an answer
// records its q-error, no answer (or no source) parks it pending.
func (m *Monitor) process(ctx context.Context, obs observation) {
	if m.source != nil {
		actual, ok, err := m.source.Actual(ctx, obs.q)
		if err != nil {
			m.truthErrs.Add(1)
			return
		}
		if ok {
			m.record(obs.name, obs.version, obs.estimate, actual, true)
			if j := m.journal; j != nil {
				j.Resolved(obs.name, obs.version, obs.q, obs.estimate, actual)
			}
			return
		}
	}
	m.park(obs, true)
}

// windowLocked returns (creating if needed) the version's q-error window;
// Monitor.mu held.
func (ns *nameState) windowLocked(version, capacity int) *versionWindow {
	vw, ok := ns.windows[version]
	if !ok {
		vw = &versionWindow{win: metrics.NewWindow(capacity)}
		ns.windows[version] = vw
		// Bound retention: versions accrue across refresh cycles, but only
		// the recent ones (live, canary, rollback candidates) are ever
		// compared — drop the oldest windows beyond a small working set so
		// a long-lived sketch's monitoring state cannot grow without bound.
		for len(ns.windows) > maxVersionWindows {
			oldest := version
			for ver := range ns.windows {
				if ver < oldest {
					oldest = ver
				}
			}
			delete(ns.windows, oldest)
		}
	}
	return vw
}

// evaluateLocked checks the just-updated window against the q-error
// thresholds, honouring the cooldown; m.mu held.
func (m *Monitor) evaluateLocked(ns *nameState, version int, vw *versionWindow) (Reason, bool) {
	if vw.win.Len() < m.cfg.MinSamples {
		return Reason{}, false
	}
	if time.Since(ns.lastTrigger) < m.cfg.Cooldown {
		return Reason{}, false
	}
	s := vw.win.Summary()
	var r Reason
	switch {
	case m.cfg.MaxMedianQ > 0 && s.Median > m.cfg.MaxMedianQ:
		r = Reason{Kind: "median", Version: version, Value: s.Median, Threshold: m.cfg.MaxMedianQ}
	case m.cfg.MaxP95Q > 0 && s.P95 > m.cfg.MaxP95Q:
		r = Reason{Kind: "p95", Version: version, Value: s.P95, Threshold: m.cfg.MaxP95Q}
	default:
		return Reason{}, false
	}
	ns.lastTrigger = time.Now()
	ns.lastFired = r
	ns.hasFired = true
	return r, true
}

// CheckStaleness fires a staleness trigger for every monitored sketch
// whose refresh clock has expired. Drive it from a timer (the Controller's
// Tick does).
func (m *Monitor) CheckStaleness() {
	if m.cfg.MaxStaleness <= 0 {
		return
	}
	type fired struct {
		name string
		r    Reason
	}
	var fires []fired
	m.mu.Lock()
	handler := m.onTrig
	m.names.Range(func(key, v any) bool {
		name, ns := key.(string), v.(*nameState)
		age := time.Since(ns.lastRefresh)
		if age <= m.cfg.MaxStaleness || time.Since(ns.lastTrigger) < m.cfg.Cooldown {
			return true
		}
		r := Reason{Kind: "staleness", Value: age.Seconds(), Threshold: m.cfg.MaxStaleness.Seconds()}
		ns.lastTrigger = time.Now()
		ns.lastFired = r
		ns.hasFired = true
		fires = append(fires, fired{name, r})
		return true
	})
	m.mu.Unlock()
	if handler == nil {
		return
	}
	for _, f := range fires {
		handler(f.name, f.r)
	}
}

// VersionStats is one version's windowed q-error record.
type VersionStats struct {
	Version int             `json:"version"`
	Samples uint64          `json:"samples"` // lifetime ground-truthed samples
	Window  metrics.Summary `json:"window"`  // rolling distribution
}

// Status is a sketch's monitoring snapshot, shaped for the daemon's drift
// endpoint.
type Status struct {
	Name        string         `json:"name"`
	Observed    uint64         `json:"observed"`
	Sampled     uint64         `json:"sampled"`
	Dropped     uint64         `json:"dropped"`               // monitor-wide queue-full drops
	TruthErrors uint64         `json:"truth_errors"`          // monitor-wide ground-truth failures
	Pending     int            `json:"pending"`               // parked observations awaiting an actual
	Unmatched   uint64         `json:"unmatched"`             // monitor-wide actuals with no parked match
	Evicted     uint64         `json:"evicted,omitempty"`     // monitor-wide pending evictions at capacity
	BadSamples  uint64         `json:"bad_samples,omitempty"` // monitor-wide non-finite q-errors dropped
	Versions    []VersionStats `json:"versions,omitempty"`
	LastTrigger *Reason        `json:"last_trigger,omitempty"`
	LastRefresh time.Time      `json:"last_refresh"`
}

// Status returns name's monitoring snapshot (zero-valued when the name has
// never been observed).
func (m *Monitor) Status(name string) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{Name: name, Dropped: m.dropped.Load(), TruthErrors: m.truthErrs.Load(),
		Unmatched: m.unmatched.Load(), Evicted: m.pendingEvicted.Load(),
		BadSamples: m.badSamples.Load()}
	for key := range m.pending {
		if key.name == name {
			st.Pending++
		}
	}
	v, ok := m.names.Load(name)
	if !ok {
		return st
	}
	ns := v.(*nameState)
	st.Observed = ns.observed.Load()
	st.Sampled = ns.sampled.Load()
	st.LastRefresh = ns.lastRefresh
	if ns.hasFired {
		r := ns.lastFired
		st.LastTrigger = &r
	}
	for ver, vw := range ns.windows {
		st.Versions = append(st.Versions, VersionStats{Version: ver, Samples: vw.samples, Window: vw.win.Summary()})
	}
	slices.SortFunc(st.Versions, func(a, b VersionStats) int { return a.Version - b.Version })
	return st
}

// Summary returns the rolling q-error summary and lifetime sample count
// for one (sketch, version) window — the comparative inputs of the canary
// gate.
func (m *Monitor) Summary(name string, version int) (metrics.Summary, uint64, bool) {
	v, ok := m.names.Load(name)
	if !ok {
		return metrics.Summary{}, 0, false
	}
	ns := v.(*nameState)
	m.mu.Lock()
	defer m.mu.Unlock()
	vw, ok := ns.windows[version]
	if !ok {
		return metrics.Summary{}, 0, false
	}
	return vw.win.Summary(), vw.samples, true
}

// Observe returns middleware that reports every computed estimate flowing
// through it to the monitor and forwards results unchanged. Stack it
// between the cache and the backend (cache hits repeat known answers and
// must not be re-counted):
//
//	serving := serve.NewCache(drift.Observe(backend, mon), 1024)
func Observe(inner estimator.Estimator, m *Monitor) estimator.Estimator {
	return &observer{inner: inner, m: m}
}

type observer struct {
	inner estimator.Estimator
	m     *Monitor
}

func (o *observer) Name() string { return o.inner.Name() }

func (o *observer) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	est, err := o.inner.Estimate(ctx, q)
	if err == nil && !est.CacheHit {
		o.m.Observe(est.Source, est.Version, q, est.Cardinality)
	}
	return est, err
}

func (o *observer) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	ests, err := o.inner.EstimateBatch(ctx, qs)
	if err == nil {
		for i, est := range ests {
			if !est.CacheHit {
				o.m.Observe(est.Source, est.Version, qs[i], est.Cardinality)
			}
		}
	}
	return ests, err
}
