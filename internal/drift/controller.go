package drift

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deepsketch/internal/lifecycle"
	"deepsketch/internal/workload"
)

// State is a controller cycle's phase.
type State string

// Cycle states: a trigger starts a refresh, the refreshed sketch canaries,
// and the gate ends the cycle by promoting or aborting it.
const (
	StateIdle       State = "idle"
	StateRefreshing State = "refreshing"
	StateCanarying  State = "canarying"
)

// Event is one controller state transition, delivered to the OnEvent hook.
type Event struct {
	// Name is the sketch the transition concerns.
	Name string
	// Kind is "refresh_started", "canary_started", "promoted", "aborted",
	// "pinned_rejected" or "error".
	Kind string
	// Version is the version the transition produced or judged (0 when not
	// applicable). For "pinned_rejected" it is the base version that stays
	// live — the rejected candidate never received a version number.
	Version int
	// Reason is the trigger that started the cycle. For "pinned_rejected"
	// it is instead the rail verdict (Kind "pinned_regress", Value the
	// candidate's pinned median, Threshold the tolerated limit).
	Reason Reason
	// Pinned carries the full rail judgment for Kind "pinned_rejected"
	// (and is nil otherwise).
	Pinned *PinnedResult
	// Err carries the failure for Kind "error".
	Err error
}

// ControllerConfig parameterizes a Controller.
type ControllerConfig struct {
	// CanaryFraction is the traffic share a refreshed sketch canaries at
	// before the gate judges it (default 0.1).
	CanaryFraction float64
	// PromoteAfter is the number of ground-truthed canary-split samples the
	// gate requires before judging (default 20).
	PromoteAfter int
	// MaxQRatio promotes the canary iff its windowed median q-error is at
	// most MaxQRatio times the primary's (default 1.1 — the canary may be
	// up to 10% worse and still promote, since it was refreshed for a
	// reason; set < 1 to require strict improvement).
	MaxQRatio float64
	// Epochs, StopAtValQ and Workers are passed through to the warm-start
	// refresh (see lifecycle.RefreshOptions).
	Epochs     int
	StopAtValQ float64
	Workers    int
	// Pinned, when non-nil, is the held-out pinned-benchmark rail: before
	// a refresh candidate's canary starts, the candidate is evaluated on
	// this frozen labeled set against the live version, and the cycle
	// aborts ("pinned_rejected") if it regresses beyond PinnedMaxRegress —
	// even when the live windows, which an adaptive feedback source can
	// steer, would later promote it.
	Pinned *PinnedBenchmark
	// PinnedMaxRegress is the rail tolerance: the candidate's pinned-set
	// median and p95 q-error may each be at most this ratio × the live
	// version's (<= 0: DefaultPinnedMaxRegress).
	PinnedMaxRegress float64
	// Workload produces the labeled drift-delta workload to fine-tune on —
	// the daemon generates-and-labels over the sketch's tables; a test can
	// hand back a fixed slice.
	Workload func(ctx context.Context, name string) ([]workload.LabeledQuery, error)
	// SkipTrigger, when set, suppresses triggers for a name (return true to
	// skip). The registry only exposes an installed canary, so the daemon
	// wires this to "the sketch entry is not ready": a trigger that fires
	// while an operator's refresh or canary fine-tune is still training
	// must not start a second concurrent retrain of the same sketch.
	SkipTrigger func(name string) bool
	// OnEvent observes state transitions (nil for none). Called without
	// controller locks held.
	OnEvent func(Event)
	// Synchronous runs the refresh inline in the trigger handler instead of
	// a background goroutine — deterministic for tests; leave false in
	// servers, where triggers fire from the serving path.
	Synchronous bool
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.CanaryFraction <= 0 || c.CanaryFraction > 1 {
		c.CanaryFraction = 0.1
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 20
	}
	if c.MaxQRatio <= 0 {
		c.MaxQRatio = 1.1
	}
	return c
}

// cycle is one in-flight drift-repair cycle.
type cycle struct {
	state       State
	reason      Reason
	startedAt   time.Time
	baseVersion int
	canaryVer   int
}

// CycleStatus reports a sketch's controller state for the drift endpoint.
type CycleStatus struct {
	State       State     `json:"state"`
	Reason      *Reason   `json:"reason,omitempty"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	BaseVersion int       `json:"base_version,omitempty"`
	CanaryVer   int       `json:"canary_version,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	// Pinned is the most recent pinned-benchmark rail judgment for this
	// sketch (nil when the rail is off or has not run); it outlives the
	// cycle that produced it, like LastError.
	Pinned *PinnedResult `json:"pinned,omitempty"`
}

// Controller closes the drift loop over a lifecycle registry: monitor
// trigger → warm-start refresh on a delta workload → canary at a traffic
// fraction → comparative windowed q-error gate → promote or abort. One
// cycle runs per sketch at a time; triggers during a cycle are ignored
// (the cycle is already repairing the drift they report).
type Controller struct {
	reg *lifecycle.Registry
	mon *Monitor
	cfg ControllerConfig

	mu         sync.Mutex
	cycles     map[string]*cycle
	lastErr    map[string]string
	lastPinned map[string]*PinnedResult
	ctx        context.Context
}

// NewController wires a controller to the registry and monitor and
// installs itself as the monitor's trigger handler.
//
//deepsketch:ctxorigin long-lived background actor; refresh cycles outlive any one caller
func NewController(reg *lifecycle.Registry, mon *Monitor, cfg ControllerConfig) *Controller {
	c := &Controller{
		reg: reg, mon: mon, cfg: cfg.withDefaults(),
		cycles:     make(map[string]*cycle),
		lastErr:    make(map[string]string),
		lastPinned: make(map[string]*PinnedResult),
		ctx:        context.Background(),
	}
	mon.OnTrigger(c.handleTrigger)
	return c
}

// handleTrigger starts a repair cycle for name unless one is already
// running, a canary is already active (an operator-started rollout is in
// flight — refreshing on top of it would only burn a retrain that
// StartCanary must reject), or the trigger concerns a version that is no
// longer live (a canary window tripping a threshold is judged by the
// gate, not repaired again).
func (c *Controller) handleTrigger(name string, r Reason) {
	_, live, err := c.reg.Live(name)
	if err != nil {
		return // not a registry-managed sketch (e.g. a fallback backend)
	}
	if r.Version != 0 && r.Version != live {
		return
	}
	if _, active := c.reg.Canary(name); active {
		return
	}
	if c.cfg.SkipTrigger != nil && c.cfg.SkipTrigger(name) {
		return
	}
	c.mu.Lock()
	if _, active := c.cycles[name]; active {
		c.mu.Unlock()
		return
	}
	cy := &cycle{state: StateRefreshing, reason: r, startedAt: time.Now(), baseVersion: live}
	c.cycles[name] = cy
	ctx := c.ctx
	c.mu.Unlock()

	c.emit(Event{Name: name, Kind: "refresh_started", Version: live, Reason: r})
	if c.cfg.Synchronous {
		c.runRefresh(ctx, name, cy)
	} else {
		go c.runRefresh(ctx, name, cy)
	}
}

// runRefresh fine-tunes the live sketch on a delta workload, judges the
// candidate against the pinned benchmark (when the rail is configured),
// and only then installs it as a canary; failures and rail rejections end
// the cycle with the live version untouched.
func (c *Controller) runRefresh(ctx context.Context, name string, cy *cycle) {
	fail := func(err error) {
		c.mu.Lock()
		delete(c.cycles, name)
		c.lastErr[name] = err.Error()
		c.mu.Unlock()
		c.emit(Event{Name: name, Kind: "error", Reason: cy.reason, Err: err})
	}
	if c.cfg.Workload == nil {
		fail(fmt.Errorf("drift: controller has no Workload source configured"))
		return
	}
	labeled, err := c.cfg.Workload(ctx, name)
	if err != nil {
		fail(fmt.Errorf("drift: delta workload for %q: %w", name, err))
		return
	}
	cand, err := c.reg.RefreshCandidate(ctx, lifecycle.RefreshOptions{
		Name: name, Workload: labeled,
		Epochs: c.cfg.Epochs, StopAtValQ: c.cfg.StopAtValQ, Workers: c.cfg.Workers,
	})
	if err != nil {
		fail(fmt.Errorf("drift: refresh of %q: %w", name, err))
		return
	}
	c.mon.MarkRefreshed(name)
	// The pinned rail judges the candidate BEFORE the canary starts: the
	// delta workload and the live windows both come from observed traffic,
	// the one channel an adaptive feedback source controls, so a candidate
	// that merely echoes poisoned feedback must be stopped here — the
	// comparative canary gate downstream would grade it against the same
	// poisoned windows and wave it through.
	if c.cfg.Pinned != nil && c.cfg.Pinned.Len() > 0 {
		liveSk, _, lerr := c.reg.Live(name)
		if lerr != nil {
			fail(fmt.Errorf("drift: pinned rail for %q: %w", name, lerr))
			return
		}
		res, jerr := c.cfg.Pinned.Judge(ctx, liveSk, cand, c.cfg.PinnedMaxRegress)
		if jerr != nil {
			fail(fmt.Errorf("drift: pinned rail for %q: %w", name, jerr))
			return
		}
		c.mu.Lock()
		c.lastPinned[name] = &res
		if !res.Pass {
			delete(c.cycles, name)
		}
		c.mu.Unlock()
		if !res.Pass {
			c.emit(Event{
				Name: name, Kind: "pinned_rejected", Version: cy.baseVersion,
				Reason: Reason{Kind: "pinned_regress", Value: res.Candidate.Median, Threshold: res.Live.Median * res.MaxRegress},
				Pinned: &res,
			})
			return
		}
	}
	ver, err := c.reg.StartCanary(name, cand, c.cfg.CanaryFraction)
	if err != nil {
		fail(fmt.Errorf("drift: canary of %q: %w", name, err))
		return
	}
	c.mu.Lock()
	cy.state = StateCanarying
	cy.canaryVer = ver
	c.mu.Unlock()
	c.emit(Event{Name: name, Kind: "canary_started", Version: ver, Reason: cy.reason})
}

// AdoptCanary registers an already-active registry canary (one resumed
// from a persistent store after a restart, or started by an operator) as
// a canarying cycle, so the comparative q-error gate judges it on
// subsequent Ticks — without it, a daemon restarted mid-canary would
// serve the split forever, promoted by nobody. Reports whether a cycle
// was adopted; no-op when the name has no canary or already has a cycle.
func (c *Controller) AdoptCanary(name string) bool {
	ci, ok := c.reg.Canary(name)
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, active := c.cycles[name]; active {
		return false
	}
	c.cycles[name] = &cycle{
		state: StateCanarying, reason: Reason{Kind: "adopted"}, startedAt: time.Now(),
		baseVersion: ci.BaseVersion, canaryVer: ci.Version,
	}
	return true
}

// Tick drives the canary gates and the staleness clock; call it on a
// timer (Run does) or directly in tests. For every canarying sketch whose
// canary window has accumulated PromoteAfter ground-truthed samples, the
// gate compares windowed median q-errors and promotes or aborts.
func (c *Controller) Tick() {
	c.mon.CheckStaleness()

	type judged struct {
		name    string
		cy      *cycle
		promote bool
	}
	var decisions []judged
	c.mu.Lock()
	for name, cy := range c.cycles {
		if cy.state != StateCanarying {
			continue
		}
		if _, ok := c.reg.Canary(name); !ok {
			// Promoted, aborted or swapped away by an operator out of band;
			// the cycle is moot.
			delete(c.cycles, name)
			continue
		}
		canarySum, canaryN, ok := c.mon.Summary(name, cy.canaryVer)
		if !ok || canaryN < uint64(c.cfg.PromoteAfter) {
			continue
		}
		primarySum, primaryN, ok := c.mon.Summary(name, cy.baseVersion)
		if !ok || primaryN == 0 {
			continue
		}
		decisions = append(decisions, judged{
			name: name, cy: cy,
			promote: canarySum.Median <= primarySum.Median*c.cfg.MaxQRatio,
		})
	}
	for _, d := range decisions {
		delete(c.cycles, d.name)
	}
	c.mu.Unlock()

	for _, d := range decisions {
		if d.promote {
			ver, err := c.reg.PromoteCanary(d.name)
			if err != nil {
				c.noteErr(d.name, err)
				c.emit(Event{Name: d.name, Kind: "error", Reason: d.cy.reason, Err: err})
				continue
			}
			c.emit(Event{Name: d.name, Kind: "promoted", Version: ver, Reason: d.cy.reason})
		} else {
			if err := c.reg.AbortCanary(d.name); err != nil {
				c.noteErr(d.name, err)
				c.emit(Event{Name: d.name, Kind: "error", Reason: d.cy.reason, Err: err})
				continue
			}
			c.emit(Event{Name: d.name, Kind: "aborted", Version: d.cy.canaryVer, Reason: d.cy.reason})
		}
	}
}

// emit delivers one event to the OnEvent hook, if any.
func (c *Controller) emit(ev Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

func (c *Controller) noteErr(name string, err error) {
	c.mu.Lock()
	c.lastErr[name] = err.Error()
	c.mu.Unlock()
}

// Run drives the controller until ctx is done: monitor processing in the
// caller's charge (Monitor.Run), gates and staleness here, every interval.
func (c *Controller) Run(ctx context.Context, interval time.Duration) {
	c.mu.Lock()
	c.ctx = ctx
	c.mu.Unlock()
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Cycle reports name's controller state (StateIdle when no cycle runs).
func (c *Controller) Cycle(name string) CycleStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CycleStatus{State: StateIdle, LastError: c.lastErr[name], Pinned: c.lastPinned[name]}
	if cy, ok := c.cycles[name]; ok {
		r := cy.reason
		st.State = cy.state
		st.Reason = &r
		st.StartedAt = cy.startedAt
		st.BaseVersion = cy.baseVersion
		st.CanaryVer = cy.canaryVer
	}
	return st
}
