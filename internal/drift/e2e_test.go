package drift

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/lifecycle"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/router"
	"deepsketch/internal/serve"
	"deepsketch/internal/workload"
)

// TestDriftToPromotionEndToEnd is the acceptance test for the closed loop:
// a sketch trained on a narrow (single-table) workload faces drifted
// (join-heavy) traffic → the monitor's windowed median q-error trips →
// the controller warm-refreshes on a drifted delta workload and canaries
// the result at 10% → the comparative q-error gate promotes it to 100% —
// all under concurrent traffic with zero failed requests, and with no
// stale-version cache answers after the promotion.
func TestDriftToPromotionEndToEnd(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 93, Titles: 900, Keywords: 50, Companies: 25, Persons: 150})
	ctx := context.Background()

	// The base sketch covers every table but trained only on the keyword
	// subschema — the workload the paper's operator built it for. Drifted
	// traffic spans all tables, a query region the model has never seen.
	narrowGen, err := workload.NewGenerator(d, workload.GenConfig{
		Seed: 11, Count: 400, Tables: []string{"title", "movie_keyword", "keyword"},
		MaxJoins: 2, MaxPreds: 2, Dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := workload.Label(d, narrowGen.Generate(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Name: "imdb", SampleSize: 48, MaxJoins: 2, MaxPreds: 2, Seed: 5, Workers: 2,
		Model: mscn.Config{HiddenUnits: 16, Epochs: 8, BatchSize: 32, Seed: 5},
	}
	base, err := core.BuildWithWorkload(d, cfg, narrow, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The drifted workload the live traffic shifts to: join queries the
	// sketch has never seen. Probes drive traffic; the delta slice is what
	// the controller fine-tunes on.
	driftGen, err := workload.NewGenerator(d, workload.GenConfig{
		Seed: 12, Count: 500, MaxJoins: 2, MaxPreds: 2, Dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := workload.Label(d, driftGen.Generate(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifted) < 300 {
		t.Fatalf("drifted workload too small: %d", len(drifted))
	}
	probes := drifted[:200]
	delta := drifted[200:]

	// Establish that the traffic really drifted: the base sketch's median
	// q-error on the probe distribution must be clearly degraded, and the
	// monitor threshold goes just under it so the trigger provably fires.
	maxCard := serve.MaxCardinality(d)
	qerrs := make([]float64, len(probes))
	for i, lq := range probes {
		c, err := base.Cardinality(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		c = math.Max(1, math.Min(c, maxCard))
		qerrs[i] = metrics.QError(c, float64(lq.Card))
	}
	primaryMedian := metrics.Summarize(qerrs).Median
	if primaryMedian < 1.5 {
		t.Fatalf("injected drift too weak: base median q-error %.2f on drifted probes — strengthen the fixture", primaryMedian)
	}
	threshold := math.Max(1.3, primaryMedian*0.8)

	// The serving stack the daemon would run: versioned registry, clamp,
	// drift observation below a version-keyed, generation-watched cache.
	reg := lifecycle.New()
	if _, err := reg.Publish("imdb", base); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(Config{
		SampleEvery: 1, Window: 128, MinSamples: 30,
		MaxMedianQ: threshold, Cooldown: time.Hour, QueueSize: 4096,
	}, &estimator.Truth{DB: d})

	var evMu sync.Mutex
	var events []Event
	ctrl := NewController(reg, mon, ControllerConfig{
		CanaryFraction: 0.1, PromoteAfter: 8, MaxQRatio: 1.0,
		Epochs: 40, Workers: 2, Synchronous: true,
		Workload: func(context.Context, string) ([]workload.LabeledQuery, error) { return delta, nil },
		OnEvent: func(ev Event) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
			if ev.Kind == "error" {
				t.Errorf("controller error event: %v", ev.Err)
			}
		},
	})

	// Version-aware keys alone keep the cache coherent across the whole
	// rollout (the daemon wires its stacks the same way): no generation
	// watching, no wholesale invalidation — a version transition remaps
	// exactly the affected queries' keys.
	cache := serve.NewCache(
		Observe(serve.Clamp(reg.Router(), maxCard), mon), 4096).
		KeyFunc(reg.Router().CacheKey)

	// Concurrent traffic for the whole drift → refresh → canary → promote
	// window. Zero failures allowed.
	probeQs := make([]db.Query, len(probes))
	for i, lq := range probes {
		probeQs[i] = lq.Query
	}
	var failures, requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				requests.Add(1)
				if g == 3 {
					if _, err := cache.EstimateBatch(ctx, probeQs[:16]); err != nil {
						failures.Add(1)
						t.Error(err)
						return
					}
				} else if _, err := cache.Estimate(ctx, probeQs[i%len(probeQs)]); err != nil {
					failures.Add(1)
					t.Error(err)
					return
				}
			}
		}(g)
	}

	// Phase 1 — drifted traffic is observed, the median trigger fires, and
	// (controller synchronous) the warm refresh lands as a canary at 10%.
	for _, q := range probeQs {
		if _, err := cache.Estimate(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	mon.Drain(ctx)
	if cy := ctrl.Cycle("imdb"); cy.State != StateCanarying {
		t.Fatalf("after drain: controller state %q, want canarying (last error %q)", cy.State, cy.LastError)
	}
	ci, ok := reg.Canary("imdb")
	if !ok || ci.Version != 2 || ci.BaseVersion != 1 || ci.Fraction != 0.1 {
		t.Fatalf("canary = %+v ok=%v, want v2 at 10%% over v1", ci, ok)
	}
	if _, lv, _ := reg.Live("imdb"); lv != 1 {
		t.Fatalf("live version %d during canary, want 1", lv)
	}
	evMu.Lock()
	if len(events) < 2 || events[0].Kind != "refresh_started" || events[0].Reason.Kind != "median" ||
		events[1].Kind != "canary_started" || events[1].Version != 2 {
		t.Fatalf("events = %+v, want refresh_started(median) then canary_started(v2)", events)
	}
	evMu.Unlock()

	// Mid-canary: traffic splits deterministically — canary-split probes
	// answer from v2, the rest from v1, and the version-keyed cache keeps
	// both splits coherent.
	canaryProbes := 0
	for _, q := range probeQs {
		inCanary := router.CanarySplit(q.Signature(), 0.1)
		if inCanary {
			canaryProbes++
		}
		est, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		wantVer := 1
		if inCanary {
			wantVer = 2
		}
		if est.Version != wantVer {
			t.Errorf("mid-canary: probe version %d, want %d (canary=%v)", est.Version, wantVer, inCanary)
		}
	}
	if canaryProbes < 8 {
		t.Fatalf("only %d probes land in the 10%% canary split — the gate cannot reach PromoteAfter; widen the probe set", canaryProbes)
	}

	// Phase 2 — canary-split samples accumulate; the comparative gate
	// promotes.
	mon.Drain(ctx)
	if _, n, ok := mon.Summary("imdb", 2); !ok || n < 8 {
		t.Fatalf("canary window has %d samples (ok=%v), want ≥ 8", n, ok)
	}
	ctrl.Tick()
	if cy := ctrl.Cycle("imdb"); cy.State != StateIdle {
		t.Fatalf("after gate: controller state %q, want idle", cy.State)
	}
	if _, ok := reg.Canary("imdb"); ok {
		t.Fatal("canary still active after the gate")
	}
	promoted, lv, err := reg.Live("imdb")
	if err != nil || lv != 2 {
		t.Fatalf("live after gate = v%d, %v — canary was not promoted (its window median must beat the drifted primary's)", lv, err)
	}
	evMu.Lock()
	last := events[len(events)-1]
	evMu.Unlock()
	if last.Kind != "promoted" || last.Version != 2 {
		t.Fatalf("final event = %+v, want promoted v2", last)
	}

	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d concurrent requests failed across the rollout", failures.Load(), requests.Load())
	}

	// Post-promotion: every answer (first request and cached repeat) must
	// be the promoted version's — no stale-version cache hits.
	for i, q := range probeQs {
		want, err := promoted.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		want = math.Max(1, math.Min(want, maxCard))
		est, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Cardinality != want || est.Version != 2 {
			t.Errorf("probe %d post-promotion: answer %v (v%d), want promoted %v (v2)", i, est.Cardinality, est.Version, want)
		}
		again, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if again.Version != 2 || again.Cardinality != want {
			t.Errorf("probe %d cached repeat: answer %v (v%d), want promoted %v (v2)", i, again.Cardinality, again.Version, want)
		}
	}

	// The loop actually repaired the drift: the promoted version's window
	// median is at or under the primary's drifted median.
	canarySum, _, _ := mon.Summary("imdb", 2)
	primarySum, _, _ := mon.Summary("imdb", 1)
	if canarySum.Median > primarySum.Median {
		t.Errorf("promoted median %.2f > drifted primary median %.2f — gate promoted a regression", canarySum.Median, primarySum.Median)
	}
	t.Logf("drift loop: primary median %.2f (threshold %.2f) → refreshed median %.2f; %d requests, 0 failures; %d/%d probes in the 10%% canary split",
		primarySum.Median, threshold, canarySum.Median, requests.Load(), canaryProbes, len(probeQs))
}
