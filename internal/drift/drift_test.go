package drift

import (
	"context"
	"fmt"
	"testing"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
)

// constTruth returns a ground-truth estimator that always answers card.
func constTruth(card float64) estimator.Estimator {
	return estimator.Func{EstimatorName: "truth", Fn: func(db.Query) (float64, error) { return card, nil }}
}

func probeQuery(i int) db.Query {
	return db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: int64(i)}},
	}
}

func TestMonitorSamplingRate(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 3, MinSamples: 1000}, constTruth(100))
	for i := 0; i < 30; i++ {
		m.Observe("s", 1, probeQuery(i), 100)
	}
	if n := m.Drain(context.Background()); n != 10 {
		t.Errorf("SampleEvery=3 over 30 observations processed %d, want 10", n)
	}
	st := m.Status("s")
	if st.Observed != 30 || st.Sampled != 10 {
		t.Errorf("status observed/sampled = %d/%d, want 30/10", st.Observed, st.Sampled)
	}
	if len(st.Versions) != 1 || st.Versions[0].Samples != 10 {
		t.Errorf("version stats = %+v", st.Versions)
	}
}

func TestMonitorMedianTriggerAndCooldown(t *testing.T) {
	var fired []Reason
	m := NewMonitor(Config{
		SampleEvery: 1, Window: 16, MinSamples: 4,
		MaxMedianQ: 2.0, Cooldown: time.Hour,
	}, constTruth(100))
	m.OnTrigger(func(name string, r Reason) {
		if name != "s" {
			t.Errorf("trigger for %q", name)
		}
		fired = append(fired, r)
	})
	// Estimates 10x off truth: q-error 10, median way over 2.0.
	for i := 0; i < 8; i++ {
		m.Observe("s", 1, probeQuery(i), 1000)
	}
	m.Drain(context.Background())
	if len(fired) != 1 {
		t.Fatalf("fired %d triggers, want exactly 1 (cooldown suppresses the rest)", len(fired))
	}
	r := fired[0]
	if r.Kind != "median" || r.Version != 1 || r.Value <= 2.0 || r.Threshold != 2.0 {
		t.Errorf("reason = %+v", r)
	}
	st := m.Status("s")
	if st.LastTrigger == nil || st.LastTrigger.Kind != "median" {
		t.Errorf("status last trigger = %+v", st.LastTrigger)
	}
	if sum, n, ok := m.Summary("s", 1); !ok || n != 8 || sum.Median != 10 {
		t.Errorf("summary = %+v n=%d ok=%v", sum, n, ok)
	}
}

func TestMonitorP95Trigger(t *testing.T) {
	var fired []Reason
	m := NewMonitor(Config{
		SampleEvery: 1, Window: 32, MinSamples: 10,
		MaxP95Q: 5, Cooldown: time.Hour,
	}, constTruth(100))
	m.OnTrigger(func(_ string, r Reason) { fired = append(fired, r) })
	// Median stays 1 (estimate == truth), but every 10th estimate is 100x
	// off: the tail trips p95 without moving the median.
	for i := 0; i < 40; i++ {
		est := 100.0
		if i%10 == 9 {
			est = 10000
		}
		m.Observe("s", 2, probeQuery(i), est)
	}
	m.Drain(context.Background())
	if len(fired) != 1 || fired[0].Kind != "p95" || fired[0].Version != 2 {
		t.Fatalf("fired = %+v, want one p95 trigger for v2", fired)
	}
}

func TestMonitorStaleness(t *testing.T) {
	var fired []Reason
	m := NewMonitor(Config{
		SampleEvery: 1, MaxStaleness: time.Millisecond, Cooldown: time.Hour,
	}, constTruth(100))
	m.OnTrigger(func(_ string, r Reason) { fired = append(fired, r) })
	m.Observe("s", 1, probeQuery(1), 100) // creates the name, arms the clock
	m.CheckStaleness()
	if len(fired) != 0 {
		t.Fatal("staleness fired before the clock expired")
	}
	time.Sleep(5 * time.Millisecond)
	m.CheckStaleness()
	if len(fired) != 1 || fired[0].Kind != "staleness" {
		t.Fatalf("fired = %+v, want one staleness trigger", fired)
	}
	m.CheckStaleness() // cooldown suppresses
	if len(fired) != 1 {
		t.Errorf("cooldown did not suppress the repeat staleness trigger")
	}
	// MarkRefreshed resets the clock: after cooldown is the only suppressor
	// left, a refreshed sketch does not re-fire.
	m2 := NewMonitor(Config{SampleEvery: 1, MaxStaleness: time.Hour}, constTruth(100))
	m2.OnTrigger(func(_ string, r Reason) { t.Errorf("fresh sketch fired %+v", r) })
	m2.Observe("s", 1, probeQuery(1), 100)
	m2.MarkRefreshed("s")
	m2.CheckStaleness()
}

func TestMonitorQueueOverflowDrops(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1, QueueSize: 4, MinSamples: 1000}, constTruth(100))
	for i := 0; i < 10; i++ {
		m.Observe("s", 1, probeQuery(i), 100)
	}
	if st := m.Status("s"); st.Dropped != 6 {
		t.Errorf("dropped = %d, want 6 (queue of 4, 10 sampled)", st.Dropped)
	}
	if n := m.Drain(context.Background()); n != 4 {
		t.Errorf("drained %d, want 4", n)
	}
}

func TestMonitorTruthFailuresCounted(t *testing.T) {
	failing := estimator.Func{EstimatorName: "truth", Fn: func(db.Query) (float64, error) {
		return 0, fmt.Errorf("backend down")
	}}
	m := NewMonitor(Config{SampleEvery: 1, MinSamples: 1}, failing)
	m.Observe("s", 1, probeQuery(1), 100)
	m.Drain(context.Background())
	st := m.Status("s")
	if st.TruthErrors != 1 {
		t.Errorf("truth errors = %d, want 1", st.TruthErrors)
	}
	if len(st.Versions) != 0 {
		t.Errorf("failed ground truth must not land in a window: %+v", st.Versions)
	}
}

// TestObserveMiddleware: computed estimates flow to the monitor with their
// serving version; cache hits and errors do not.
func TestObserveMiddleware(t *testing.T) {
	backend := &fakeEstimator{card: 500, version: 3}
	m := NewMonitor(Config{SampleEvery: 1, MinSamples: 1000}, constTruth(100))
	obs := Observe(backend, m)
	if obs.Name() != backend.Name() {
		t.Errorf("observer must be name-transparent")
	}
	ctx := context.Background()
	if _, err := obs.Estimate(ctx, probeQuery(1)); err != nil {
		t.Fatal(err)
	}
	backend.cacheHit = true
	if _, err := obs.Estimate(ctx, probeQuery(2)); err != nil {
		t.Fatal(err)
	}
	backend.cacheHit = false
	if _, err := obs.EstimateBatch(ctx, []db.Query{probeQuery(3), probeQuery(4)}); err != nil {
		t.Fatal(err)
	}
	m.Drain(ctx)
	st := m.Status("fake")
	if st.Observed != 3 {
		t.Errorf("observed = %d, want 3 (cache hit skipped)", st.Observed)
	}
	if len(st.Versions) != 1 || st.Versions[0].Version != 3 || st.Versions[0].Samples != 3 {
		t.Errorf("version stats = %+v, want 3 samples under v3", st.Versions)
	}
}

type fakeEstimator struct {
	card     float64
	version  int
	cacheHit bool
}

func (f *fakeEstimator) Name() string { return "fake" }

func (f *fakeEstimator) Estimate(_ context.Context, _ db.Query) (estimator.Estimate, error) {
	return estimator.Estimate{Cardinality: f.card, Source: "fake", Version: f.version, CacheHit: f.cacheHit}, nil
}

func (f *fakeEstimator) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	out := make([]estimator.Estimate, len(qs))
	for i, q := range qs {
		out[i], _ = f.Estimate(ctx, q)
	}
	return out, nil
}
