package drift

import (
	"context"
	"math"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/metrics"
)

// ActualsSource is where a Monitor obtains ground truth for a sampled
// estimate. The classic source is the exact Truth executor (wrapped via
// EstimatorSource) — but ground truth can also arrive later, out of band,
// as logged actuals POSTed by clients that ran the query for real. A
// source returns ok=false when it has no answer for the query *right
// now*; the monitor then parks the observation as pending, to be matched
// against a future ResolveActual call. A nil source parks everything —
// that is the serving mode with no exact executor at all.
type ActualsSource interface {
	Actual(ctx context.Context, q db.Query) (actual float64, ok bool, err error)
}

// EstimatorSource adapts an estimator (typically estimator.Truth) into an
// ActualsSource that always answers.
func EstimatorSource(est estimator.Estimator) ActualsSource {
	if est == nil {
		return nil
	}
	return estimatorSource{est}
}

type estimatorSource struct{ est estimator.Estimator }

func (s estimatorSource) Actual(ctx context.Context, q db.Query) (float64, bool, error) {
	e, err := s.est.Estimate(ctx, q)
	if err != nil {
		return 0, false, err
	}
	return e.Cardinality, true, nil
}

// Journal receives every monitoring transition worth persisting: an
// observation parked pending (estimate served, actual unknown) and an
// observation resolved (q-error recorded). The daemon points this at the
// observation WAL so the monitor's windows and pending queue can be
// rebuilt by replay after a restart. Calls arrive without monitor locks
// held and must not call back into the monitor.
type Journal interface {
	Pending(name string, version int, q db.Query, estimate float64)
	Resolved(name string, version int, q db.Query, estimate, actual float64)
}

// pendingKey identifies one parked observation: a sketch name and a
// canonical query signature.
type pendingKey struct {
	name string
	sig  string
}

// pendingObs is one parked observation awaiting an out-of-band actual.
type pendingObs struct {
	key pendingKey
	obs observation
}

// park stores an observation awaiting ground truth, keyed by (name,
// signature) with the latest estimate winning, evicting the oldest
// entries beyond Config.QueueSize. journal=false on replay restore.
func (m *Monitor) park(obs observation, journal bool) {
	key := pendingKey{obs.name, obs.q.Signature()}
	m.mu.Lock()
	if el, ok := m.pending[key]; ok {
		el.Value.(*pendingObs).obs = obs
		m.pendingOrder.MoveToBack(el)
	} else {
		m.pending[key] = m.pendingOrder.PushBack(&pendingObs{key: key, obs: obs})
		for m.pendingOrder.Len() > m.cfg.QueueSize {
			front := m.pendingOrder.Front()
			m.pendingOrder.Remove(front)
			delete(m.pending, front.Value.(*pendingObs).key)
			m.pendingEvicted.Add(1)
		}
	}
	j := m.journal
	m.mu.Unlock()
	if journal && j != nil {
		j.Pending(obs.name, obs.version, obs.q, obs.estimate)
	}
}

// takePending pops the parked observation for (name, signature).
func (m *Monitor) takePending(name, signature string) (observation, bool) {
	key := pendingKey{name, signature}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.pending[key]
	if !ok {
		return observation{}, false
	}
	m.pendingOrder.Remove(el)
	delete(m.pending, key)
	return el.Value.(*pendingObs).obs, true
}

// ResolveActual reports an out-of-band observed actual for (name,
// signature) — the logged-actuals ingest path. If a parked observation
// matches, its q-error is recorded in the answering version's window
// (evaluating drift triggers exactly as the in-process source would) and
// the observation's version, estimate and q-error are returned. An
// unmatched actual is counted and ignored here — it carries no estimate
// to grade, though it is still training signal for the WAL.
func (m *Monitor) ResolveActual(name, signature string, actual float64) (version int, estimate, qerr float64, matched bool) {
	obs, ok := m.takePending(name, signature)
	if !ok {
		m.unmatched.Add(1)
		return 0, 0, 0, false
	}
	m.record(obs.name, obs.version, obs.estimate, actual, true)
	qerr = metrics.QError(obs.estimate, actual)
	if math.IsNaN(qerr) || math.IsInf(qerr, 0) {
		// The window dropped this sample (see record); report 0 rather than
		// a non-finite value callers would serialize into broken JSON.
		qerr = 0
	}
	return obs.version, obs.estimate, qerr, true
}

// RestorePending re-parks an observation during WAL replay — no trigger
// evaluation, no journaling (the record is already durable).
func (m *Monitor) RestorePending(name string, version int, q db.Query, estimate float64) {
	m.park(observation{name: name, version: version, q: q, estimate: estimate}, false)
}

// RestoreActual matches a replayed actual against the pending queue and
// records its q-error without evaluating triggers — replay must rebuild
// windows, not fire refresh cycles at boot. Reports whether it matched.
func (m *Monitor) RestoreActual(name, signature string, actual float64) bool {
	obs, ok := m.takePending(name, signature)
	if !ok {
		return false
	}
	m.record(obs.name, obs.version, obs.estimate, actual, false)
	return true
}

// RecordResolved records an already-matched (estimate, actual) pair into
// a version's window without trigger evaluation — the replay path for
// durable records that captured both halves.
func (m *Monitor) RecordResolved(name string, version int, estimate, actual float64) {
	m.record(name, version, estimate, actual, false)
}

// record lands one resolved observation's q-error in the (name, version)
// window; evaluate=true additionally runs the trigger thresholds.
//
// Zeros are safe — metrics.QError clamps both sides to ≥ 1, so an actual
// of exactly 0 (an empty result a client really observed) or an estimate
// of 0 grades as a finite q-error. Non-finite q-errors (a degenerate model
// emitting NaN/Inf, an overflowed actual) are counted and dropped instead:
// one NaN in the window makes every quantile of the sorted summary
// undefined, silently disarming — or falsely arming — the drift triggers.
func (m *Monitor) record(name string, version int, estimate, actual float64, evaluate bool) {
	qerr := metrics.QError(estimate, actual)
	if math.IsNaN(qerr) || math.IsInf(qerr, 0) {
		m.badSamples.Add(1)
		return
	}
	ns := m.state(name)
	m.mu.Lock()
	vw := ns.windowLocked(version, m.cfg.Window)
	vw.win.Add(qerr)
	vw.samples++
	var reason Reason
	var fire bool
	var handler func(string, Reason)
	if evaluate {
		reason, fire = m.evaluateLocked(ns, version, vw)
		if fire {
			handler = m.onTrig
		}
	}
	m.mu.Unlock()
	if fire && handler != nil {
		handler(name, reason)
	}
}
