package drift

// The pinned-benchmark rail. The controller's live-window comparative gate
// judges a canary against the traffic that triggered the refresh — which
// is exactly the signal an adaptive adversary controls ("Cardinality
// Sketches under Adaptive Inputs", Ahmadian & Cohen 2024: whoever steers
// the feedback steers the next model). A client that feeds inflated
// actuals both trips the trigger AND supplies the poisoned delta workload,
// so the candidate scores beautifully against the poisoned windows while
// regressing on everything else. The pinned benchmark is the held-out
// answer: a frozen labeled workload, fixed before any live feedback
// existed, that every refresh candidate must not regress on — regardless
// of what the live windows say.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/fsx"
	"deepsketch/internal/metrics"
	"deepsketch/internal/workload"
)

// DefaultPinnedMaxRegress is the rail tolerance when the controller config
// leaves PinnedMaxRegress unset: the candidate's pinned-set median and p95
// q-error may each be at most 1.5× the live version's. Deliberately looser
// than the canary gate's MaxQRatio — a legitimate drift refresh optimizes
// for the NEW distribution and may mildly regress on the frozen one; the
// rail exists to stop collapses, not to freeze the model.
const DefaultPinnedMaxRegress = 1.5

// CardinalityEstimator is the offline estimate surface the rail judges
// candidates through; *core.Sketch satisfies it.
type CardinalityEstimator interface {
	Cardinality(q db.Query) (float64, error)
}

// PinnedBenchmark is a frozen labeled workload held out from every
// feedback loop: it is fixed at creation (typically first boot), persisted
// with fsx.AtomicWriteFile, and never regenerated from live traffic. The
// controller evaluates every refresh candidate against it before the
// candidate's canary starts (ControllerConfig.Pinned).
type PinnedBenchmark struct {
	queries []workload.LabeledQuery
}

// NewPinnedBenchmark freezes a labeled workload as a pinned benchmark
// (the slice is copied; later caller mutations do not leak in).
func NewPinnedBenchmark(labeled []workload.LabeledQuery) *PinnedBenchmark {
	qs := make([]workload.LabeledQuery, len(labeled))
	copy(qs, labeled)
	return &PinnedBenchmark{queries: qs}
}

// Len reports the number of pinned queries.
func (p *PinnedBenchmark) Len() int { return len(p.queries) }

// Queries returns a copy of the pinned labeled workload.
func (p *PinnedBenchmark) Queries() []workload.LabeledQuery {
	qs := make([]workload.LabeledQuery, len(p.queries))
	copy(qs, p.queries)
	return qs
}

// Evaluate computes est's q-error distribution over the pinned set.
// Non-finite q-errors (a degenerate model emitting NaN/Inf) are clamped to
// math.MaxFloat64 rather than dropped: on a held-out judgment set a broken
// estimate must count against the candidate, not vanish.
func (p *PinnedBenchmark) Evaluate(ctx context.Context, est CardinalityEstimator) (metrics.Summary, error) {
	qerrs := make([]float64, 0, len(p.queries))
	for _, lq := range p.queries {
		if err := ctx.Err(); err != nil {
			return metrics.Summary{}, err
		}
		c, err := est.Cardinality(lq.Query)
		if err != nil {
			return metrics.Summary{}, err
		}
		q := metrics.QError(c, float64(lq.Card))
		if math.IsNaN(q) || math.IsInf(q, 0) {
			q = math.MaxFloat64
		}
		qerrs = append(qerrs, q)
	}
	return metrics.Summarize(qerrs), nil
}

// PinnedResult is one rail judgment: the live and candidate q-error
// distributions over the pinned set and the verdict.
type PinnedResult struct {
	// Size is the pinned-set query count.
	Size int `json:"size"`
	// Live and Candidate are the two q-error distributions.
	Live      metrics.Summary `json:"live"`
	Candidate metrics.Summary `json:"candidate"`
	// MaxRegress is the tolerance applied: the candidate passes iff its
	// median ≤ live median × MaxRegress AND its p95 ≤ live p95 × MaxRegress.
	MaxRegress float64 `json:"max_regress"`
	// Pass reports the verdict.
	Pass bool `json:"pass"`
	// At is when the judgment ran.
	At time.Time `json:"at"`
}

// Judge evaluates both the live version and the refresh candidate on the
// pinned set and applies the tolerance (maxRegress <= 0 uses
// DefaultPinnedMaxRegress). The candidate passes iff neither its median
// nor its p95 q-error regresses beyond maxRegress × the live version's.
func (p *PinnedBenchmark) Judge(ctx context.Context, live, candidate CardinalityEstimator, maxRegress float64) (PinnedResult, error) {
	if maxRegress <= 0 {
		maxRegress = DefaultPinnedMaxRegress
	}
	liveSum, err := p.Evaluate(ctx, live)
	if err != nil {
		return PinnedResult{}, fmt.Errorf("drift: pinned evaluation of live version: %w", err)
	}
	candSum, err := p.Evaluate(ctx, candidate)
	if err != nil {
		return PinnedResult{}, fmt.Errorf("drift: pinned evaluation of candidate: %w", err)
	}
	return PinnedResult{
		Size: len(p.queries), Live: liveSum, Candidate: candSum,
		MaxRegress: maxRegress,
		Pass: candSum.Median <= liveSum.Median*maxRegress &&
			candSum.P95 <= liveSum.P95*maxRegress,
		At: time.Now(),
	}, nil
}

// WritePinnedBenchmarkFile persists a pinned workload in the artifact CSV
// format via fsx.AtomicWriteFile: after a crash the file is either the
// previous benchmark or the new one, never a torn mixture — a rail that
// loads a half-written benchmark would judge against garbage.
func WritePinnedBenchmarkFile(path string, labeled []workload.LabeledQuery) error {
	var buf bytes.Buffer
	if err := workload.WriteCSV(&buf, labeled); err != nil {
		return fmt.Errorf("drift: encoding pinned benchmark: %w", err)
	}
	return fsx.AtomicWriteFile(path, buf.Bytes(), 0o644)
}

// LoadPinnedBenchmarkFile loads a pinned benchmark persisted by
// WritePinnedBenchmarkFile, validating every query against the schema.
func LoadPinnedBenchmarkFile(d *db.DB, path string) (*PinnedBenchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	labeled, err := workload.ReadCSV(d, f)
	if err != nil {
		return nil, fmt.Errorf("drift: pinned benchmark %s: %w", path, err)
	}
	if len(labeled) == 0 {
		return nil, fmt.Errorf("drift: pinned benchmark %s is empty", path)
	}
	return &PinnedBenchmark{queries: labeled}, nil
}
