package drift

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/workload"
)

// cardFunc adapts a function into a CardinalityEstimator.
type cardFunc func(db.Query) (float64, error)

func (f cardFunc) Cardinality(q db.Query) (float64, error) { return f(q) }

// pinnedFixture is a small labeled set with known cardinalities.
func pinnedFixture(n int) []workload.LabeledQuery {
	out := make([]workload.LabeledQuery, n)
	for i := range out {
		out[i] = workload.LabeledQuery{Query: probeQuery(1900 + i), Card: int64(100 + i)}
	}
	return out
}

// exactCard answers every pinned query with its true label scaled by k.
func exactCard(labeled []workload.LabeledQuery, k float64) cardFunc {
	bySig := make(map[string]float64, len(labeled))
	for _, lq := range labeled {
		bySig[lq.Query.Signature()] = float64(lq.Card)
	}
	return func(q db.Query) (float64, error) { return bySig[q.Signature()] * k, nil }
}

func TestPinnedJudgeVerdicts(t *testing.T) {
	labeled := pinnedFixture(20)
	pb := NewPinnedBenchmark(labeled)
	if pb.Len() != 20 {
		t.Fatalf("Len = %d, want 20", pb.Len())
	}
	ctx := context.Background()
	live := exactCard(labeled, 1) // q-error 1 everywhere

	cases := []struct {
		name       string
		candScale  float64
		maxRegress float64
		wantPass   bool
	}{
		{"identical candidate passes", 1, 1.5, true},
		{"mild regression within tolerance", 1.4, 1.5, true},
		{"regression beyond tolerance rejected", 10, 1.5, false},
		{"strict tolerance rejects mild regression", 1.4, 1.05, false},
		{"zero tolerance uses the default", 1.4, 0, true},
		{"improvement always passes", 1, 1.01, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := pb.Judge(ctx, live, exactCard(labeled, tc.candScale), tc.maxRegress)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pass != tc.wantPass {
				t.Errorf("Pass = %v, want %v (candidate median %.3g vs live %.3g, tolerance %g)",
					res.Pass, tc.wantPass, res.Candidate.Median, res.Live.Median, res.MaxRegress)
			}
			if res.Size != 20 {
				t.Errorf("Size = %d, want 20", res.Size)
			}
			if tc.maxRegress == 0 && res.MaxRegress != DefaultPinnedMaxRegress {
				t.Errorf("MaxRegress = %g, want default %g", res.MaxRegress, DefaultPinnedMaxRegress)
			}
		})
	}
}

// A p95 collapse must fail the rail even when the median holds: an
// adaptive adversary concentrating damage on a small query region moves
// the tail first.
func TestPinnedJudgeP95Collapse(t *testing.T) {
	labeled := pinnedFixture(40)
	pb := NewPinnedBenchmark(labeled)
	live := exactCard(labeled, 1)
	truth := exactCard(labeled, 1)
	// Candidate exact on 36/40 queries, 100× off on 4 (10% — past p95).
	bad := map[string]bool{}
	for _, lq := range labeled[:4] {
		bad[lq.Query.Signature()] = true
	}
	cand := cardFunc(func(q db.Query) (float64, error) {
		c, _ := truth(q)
		if bad[q.Signature()] {
			return c * 100, nil
		}
		return c, nil
	})
	res, err := pb.Judge(context.Background(), live, cand, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatalf("tail collapse passed the rail: candidate median %.3g p95 %.3g vs live p95 %.3g",
			res.Candidate.Median, res.Candidate.P95, res.Live.P95)
	}
	if res.Candidate.Median > res.Live.Median*1.5 {
		t.Fatalf("fixture broken: median %.3g should be within tolerance, only the p95 should trip", res.Candidate.Median)
	}
}

// A candidate that emits NaN on a pinned query must count maximally
// against itself, not vanish from the distribution.
func TestPinnedEvaluateNonFiniteCandidate(t *testing.T) {
	labeled := pinnedFixture(10)
	pb := NewPinnedBenchmark(labeled)
	cand := cardFunc(func(db.Query) (float64, error) { return math.NaN(), nil })
	sum, err := pb.Evaluate(context.Background(), cand)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Median != math.MaxFloat64 {
		t.Errorf("NaN candidate median = %g, want MaxFloat64", sum.Median)
	}
	res, err := pb.Judge(context.Background(), exactCard(labeled, 1), cand, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("NaN-emitting candidate passed the rail")
	}
}

func TestPinnedBenchmarkFileRoundTrip(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 3, Titles: 200})
	labeled := pinnedFixture(15)
	dir := t.TempDir()
	path := filepath.Join(dir, "imdb.workload")

	if err := WritePinnedBenchmarkFile(path, labeled); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after atomic write: %v", err)
	}
	pb, err := LoadPinnedBenchmarkFile(d, path)
	if err != nil {
		t.Fatal(err)
	}
	got := pb.Queries()
	if len(got) != len(labeled) {
		t.Fatalf("loaded %d queries, want %d", len(got), len(labeled))
	}
	for i := range got {
		if got[i].Query.Signature() != labeled[i].Query.Signature() || got[i].Card != labeled[i].Card {
			t.Errorf("query %d: (%s, %d) != (%s, %d)", i,
				got[i].Query.Signature(), got[i].Card, labeled[i].Query.Signature(), labeled[i].Card)
		}
	}

	// Overwrite is atomic too: the second benchmark fully replaces the first.
	if err := WritePinnedBenchmarkFile(path, labeled[:5]); err != nil {
		t.Fatal(err)
	}
	pb2, err := LoadPinnedBenchmarkFile(d, path)
	if err != nil {
		t.Fatal(err)
	}
	if pb2.Len() != 5 {
		t.Fatalf("after overwrite: %d queries, want 5", pb2.Len())
	}

	// An empty benchmark is a load error, not a silent no-op rail.
	empty := filepath.Join(dir, "empty.workload")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPinnedBenchmarkFile(d, empty); err == nil {
		t.Error("loading an empty pinned benchmark succeeded, want error")
	}
}
