package drift

import (
	"context"
	"sync"
	"testing"
	"time"

	"deepsketch/internal/db"
)

// Tests for the logged-actuals seam: a monitor with no in-process ground
// truth parks sampled estimates pending, resolves them when actuals
// arrive out of band, and restores both halves from journal replay.

// memJournal records Journal calls for assertions.
type memJournal struct {
	mu       sync.Mutex
	pending  []string // signatures parked
	resolved []string // signatures resolved in-process
}

func (j *memJournal) Pending(name string, version int, q db.Query, estimate float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending = append(j.pending, q.Signature())
}

func (j *memJournal) Resolved(name string, version int, q db.Query, estimate, actual float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.resolved = append(j.resolved, q.Signature())
}

func TestMonitorNilTruthParksPending(t *testing.T) {
	j := &memJournal{}
	m := NewMonitor(Config{SampleEvery: 1, MinSamples: 4, Journal: j}, nil)
	for i := 0; i < 5; i++ {
		m.Observe("s", 1, probeQuery(i), 100)
	}
	m.Drain(context.Background())

	st := m.Status("s")
	if st.Pending != 5 {
		t.Fatalf("pending = %d, want 5", st.Pending)
	}
	if len(st.Versions) != 0 {
		t.Fatalf("windows populated without any actuals: %+v", st.Versions)
	}
	if len(j.pending) != 5 || len(j.resolved) != 0 {
		t.Fatalf("journal pending/resolved = %d/%d, want 5/0", len(j.pending), len(j.resolved))
	}
}

func TestResolveActualRecordsAndTriggers(t *testing.T) {
	var fired []Reason
	m := NewMonitor(Config{
		SampleEvery: 1, Window: 16, MinSamples: 4,
		MaxMedianQ: 2.0, Cooldown: time.Hour,
	}, nil)
	m.OnTrigger(func(name string, r Reason) { fired = append(fired, r) })

	for i := 0; i < 6; i++ {
		m.Observe("s", 1, probeQuery(i), 1000)
	}
	m.Drain(context.Background())

	// Resolve each parked estimate with an actual 10x below it.
	for i := 0; i < 6; i++ {
		ver, est, qerr, ok := m.ResolveActual("s", probeQuery(i).Signature(), 100)
		if !ok {
			t.Fatalf("actual %d unmatched", i)
		}
		if ver != 1 || est != 1000 || qerr != 10 {
			t.Fatalf("resolve %d = (v%d, est %g, q %g)", i, ver, est, qerr)
		}
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d triggers, want exactly 1", len(fired))
	}
	if fired[0].Kind != "median" {
		t.Fatalf("trigger kind %q, want median", fired[0].Kind)
	}
	st := m.Status("s")
	if st.Pending != 0 {
		t.Fatalf("pending = %d after resolving all, want 0", st.Pending)
	}
	if st.Versions[0].Samples != 6 {
		t.Fatalf("version samples = %d, want 6", st.Versions[0].Samples)
	}
}

func TestResolveActualUnmatchedCounted(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1}, nil)
	if _, _, _, ok := m.ResolveActual("s", "no-such-sig", 42); ok {
		t.Fatal("unmatched actual reported matched")
	}
	if st := m.Status("s"); st.Unmatched != 1 {
		t.Fatalf("unmatched = %d, want 1", st.Unmatched)
	}
}

func TestPendingEvictionAtCapacity(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1, QueueSize: 4}, nil)
	for i := 0; i < 10; i++ {
		m.Observe("s", 1, probeQuery(i), 100)
		m.Drain(context.Background()) // queue capacity is also 4; drain as we go
	}
	st := m.Status("s")
	if st.Pending != 4 {
		t.Fatalf("pending = %d at QueueSize 4, want 4", st.Pending)
	}
	if st.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", st.Evicted)
	}
	// The oldest were evicted; only the newest four still match.
	if _, _, _, ok := m.ResolveActual("s", probeQuery(0).Signature(), 100); ok {
		t.Fatal("evicted observation still matched")
	}
	if _, _, _, ok := m.ResolveActual("s", probeQuery(9).Signature(), 100); !ok {
		t.Fatal("recent observation lost")
	}
}

func TestPendingLatestEstimateWins(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1}, nil)
	q := probeQuery(1)
	m.Observe("s", 1, q, 100)
	m.Observe("s", 2, q, 500) // same signature re-served by a newer version
	m.Drain(context.Background())
	if st := m.Status("s"); st.Pending != 1 {
		t.Fatalf("pending = %d for one signature, want 1", st.Pending)
	}
	ver, est, _, ok := m.ResolveActual("s", q.Signature(), 500)
	if !ok || ver != 2 || est != 500 {
		t.Fatalf("resolve = (v%d, est %g, %v), want latest observation (v2, 500)", ver, est, ok)
	}
}

func TestRestorePathsDoNotTriggerOrJournal(t *testing.T) {
	j := &memJournal{}
	var fired []Reason
	m := NewMonitor(Config{
		SampleEvery: 1, Window: 16, MinSamples: 2,
		MaxMedianQ: 1.5, Cooldown: time.Hour, Journal: j,
	}, nil)
	m.OnTrigger(func(name string, r Reason) { fired = append(fired, r) })

	// Replay: restore pendings, resolve some, record pre-matched pairs —
	// q-errors far over threshold, yet replay must never fire triggers.
	for i := 0; i < 4; i++ {
		m.RestorePending("s", 1, probeQuery(i), 1000)
	}
	if !m.RestoreActual("s", probeQuery(0).Signature(), 10) {
		t.Fatal("restored actual did not match restored pending")
	}
	if m.RestoreActual("s", "no-such-sig", 10) {
		t.Fatal("unmatched restore reported matched")
	}
	m.RecordResolved("s", 1, 1000, 10)
	m.RecordResolved("s", 1, 1000, 10)

	if len(fired) != 0 {
		t.Fatalf("replay fired %d triggers", len(fired))
	}
	if len(j.pending) != 0 || len(j.resolved) != 0 {
		t.Fatalf("replay journaled %d/%d records", len(j.pending), len(j.resolved))
	}
	st := m.Status("s")
	if st.Pending != 3 {
		t.Fatalf("pending = %d after restore+one resolve, want 3", st.Pending)
	}
	if len(st.Versions) != 1 || st.Versions[0].Samples != 3 {
		t.Fatalf("restored window samples = %+v, want 3", st.Versions)
	}

	// The restored window is live: the next evaluated resolution trips the
	// median threshold immediately — window state survived the "restart".
	m.Observe("s", 1, probeQuery(9), 1000)
	m.Drain(context.Background())
	if _, _, _, ok := m.ResolveActual("s", probeQuery(9).Signature(), 10); !ok {
		t.Fatal("live actual unmatched")
	}
	if len(fired) != 1 {
		t.Fatalf("first live resolution fired %d triggers, want 1 (restored window supplies MinSamples)", len(fired))
	}
}

func TestTruthSourceStillResolvesInProcess(t *testing.T) {
	j := &memJournal{}
	m := NewMonitor(Config{SampleEvery: 1, MinSamples: 100, Journal: j}, constTruth(100))
	for i := 0; i < 3; i++ {
		m.Observe("s", 1, probeQuery(i), 200)
	}
	m.Drain(context.Background())
	st := m.Status("s")
	if st.Pending != 0 {
		t.Fatalf("pending = %d with an in-process source, want 0", st.Pending)
	}
	if st.Versions[0].Samples != 3 {
		t.Fatalf("samples = %d, want 3", st.Versions[0].Samples)
	}
	if len(j.resolved) != 3 || len(j.pending) != 0 {
		t.Fatalf("journal resolved/pending = %d/%d, want 3/0", len(j.resolved), len(j.pending))
	}
}
