package drift

import (
	"context"
	"math"
	"testing"
)

// Regression tests for the q-error guard on the resolved-observation path:
// zeros grade as finite q-errors (QError clamps both sides to ≥ 1), and
// non-finite pairs are counted and dropped instead of poisoning the
// window's sorted quantiles. The adversary harness generates exactly these
// inputs — empty-result queries report an actual of 0, and a degraded
// model can emit NaN.
func TestMonitorZeroActualAndEstimateGuard(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1, Window: 16, MinSamples: 100}, nil)

	m.RecordResolved("s", 1, 100, 0) // empty result observed: qerr = 100/1
	m.RecordResolved("s", 1, 0, 50)  // zero estimate served: qerr = 50/1
	m.RecordResolved("s", 1, 0, 0)   // both zero: qerr = 1

	sum, n, ok := m.Summary("s", 1)
	if !ok || n != 3 {
		t.Fatalf("window has %d samples (ok=%v), want 3 — zeros must land as finite q-errors", n, ok)
	}
	for _, v := range []float64{sum.Median, sum.P95, sum.Max} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite summary statistic after zero-valued pairs: %+v", sum)
		}
	}
	if sum.Max != 100 || sum.Median != 50 {
		t.Errorf("summary = %+v, want max 100 median 50", sum)
	}
	if st := m.Status("s"); st.BadSamples != 0 {
		t.Errorf("BadSamples = %d after valid zeros, want 0", st.BadSamples)
	}
}

func TestMonitorNonFiniteSamplesDropped(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1, Window: 16, MinSamples: 100}, nil)
	m.RecordResolved("s", 1, 100, 100) // one clean sample, qerr 1

	m.RecordResolved("s", 1, math.NaN(), 100)
	m.RecordResolved("s", 1, math.Inf(1), 100)
	m.RecordResolved("s", 1, 100, math.Inf(1))
	m.RecordResolved("s", 1, math.NaN(), math.NaN())

	sum, n, ok := m.Summary("s", 1)
	if !ok || n != 1 {
		t.Fatalf("window has %d samples (ok=%v), want 1 — non-finite pairs must be dropped", n, ok)
	}
	if sum.Median != 1 {
		t.Errorf("median = %g, want 1 (the clean sample only)", sum.Median)
	}
	if st := m.Status("s"); st.BadSamples != 4 {
		t.Errorf("BadSamples = %d, want 4", st.BadSamples)
	}
}

// The ingest path end to end: a parked NaN estimate resolved by a real
// actual must not corrupt the window, and the returned q-error must stay
// finite (callers serialize it into JSON responses).
func TestResolveActualNonFiniteEstimate(t *testing.T) {
	m := NewMonitor(Config{SampleEvery: 1, Window: 16, MinSamples: 100}, nil)
	ctx := context.Background()

	m.Observe("s", 1, probeQuery(1), math.NaN())
	m.Observe("s", 1, probeQuery(2), 200)
	m.Drain(ctx)

	ver, _, qerr, matched := m.ResolveActual("s", probeQuery(1).Signature(), 100)
	if !matched || ver != 1 {
		t.Fatalf("ResolveActual(NaN estimate) matched=%v ver=%d, want matched v1", matched, ver)
	}
	if math.IsNaN(qerr) || math.IsInf(qerr, 0) {
		t.Fatalf("ResolveActual returned non-finite q-error %v", qerr)
	}
	if _, _, qerr, matched = m.ResolveActual("s", probeQuery(2).Signature(), 0); !matched || qerr != 200 {
		t.Fatalf("ResolveActual(actual=0) qerr=%v matched=%v, want 200 matched", qerr, matched)
	}

	sum, n, ok := m.Summary("s", 1)
	if !ok || n != 1 || sum.Median != 200 {
		t.Fatalf("window n=%d median=%v (ok=%v), want exactly the finite sample (200)", n, sum.Median, ok)
	}
	if st := m.Status("s"); st.BadSamples != 1 {
		t.Errorf("BadSamples = %d, want 1", st.BadSamples)
	}
}
