package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if blob, err := os.ReadFile(path); err != nil || string(blob) != "v1" {
		t.Fatalf("read back %q, %v", blob, err)
	}

	// Overwrite must go through the same tmp+rename path and leave no
	// temp file behind.
	if err := AtomicWriteFile(path, []byte("v2 longer payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if blob, _ := os.ReadFile(path); string(blob) != "v2 longer payload" {
		t.Fatalf("overwrite read back %q", blob)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}

func TestAtomicWriteFileReplacesStaleTmp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	// A crash artifact at the temp path must not survive or corrupt the
	// next write.
	if err := os.WriteFile(path+".tmp", []byte("torn garb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("fresh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if blob, _ := os.ReadFile(path); string(blob) != "fresh" {
		t.Fatalf("read back %q", blob)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("stale tmp still present: %v", err)
	}
}

func TestAtomicWriteFileErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	// Renaming onto a directory fails after the tmp write; the tmp file
	// must be removed on the failure path.
	path := filepath.Join(dir, "target")
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("rename onto a directory should fail")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("tmp not cleaned up after failed rename: %v", err)
	}
}

func TestWriteFileSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteFileSync(path, []byte("abc"), 0o600); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil || string(blob) != "abc" {
		t.Fatalf("read back %q, %v", blob, err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("mode %v, %v", fi.Mode(), err)
	}
}
