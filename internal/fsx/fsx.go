// Package fsx holds the crash-consistency file helpers behind every
// "persist atomically" site in the tree: write a temp file, fsync it,
// rename it over the destination, and best-effort fsync the directory.
//
// The fsync-before-rename ordering is the whole point. os.Rename is
// atomic with respect to concurrent readers, but it says nothing about
// durability: after a crash, a journaling filesystem may replay the
// rename (the metadata operation) without the temp file's data blocks
// ever having reached the disk, leaving a complete-looking destination
// with torn or zero-filled contents. Syncing the temp file first pins
// its data before the rename can become visible. The static durability
// analyzer (internal/analysis, cmd/deepsketch-lint) enforces this
// ordering on every os.Rename in the repository; call sites that write
// whole small files should route through AtomicWriteFile instead of
// hand-rolling the sequence.
package fsx

import "os"

// AtomicWriteFile durably replaces path with data: the bytes are written
// to path+".tmp", fsynced, renamed onto path, and the parent directory is
// fsynced (best effort) so the rename itself survives a crash. Readers of
// path see either the previous content or the new content, never a
// mixture — even across power loss. The temp file is removed on failure.
//
//deepsketch:durable
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := WriteFileSync(tmp, data, perm); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(path)
	return nil
}

// WriteFileSync is os.WriteFile plus an fsync before close: when it
// returns nil, the bytes are on stable storage, not just in the page
// cache. Use it for temp files that a subsequent os.Rename publishes.
//
//deepsketch:durable
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs the directory containing path so a just-renamed entry is
// itself durable. Errors are ignored: directory fsync is unsupported on
// some filesystems, and the file-level guarantees already hold.
func syncDir(path string) {
	dir := "."
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			dir = path[:i+1]
			break
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //deepsketch:errok directory fsync is unsupported on some filesystems; the file-level fsync already ran
	d.Close()
}
