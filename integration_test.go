package deepsketch_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"deepsketch"
)

// TestIntegrationTPCHPipeline runs the complete pipeline on the second
// (TPC-H) schema: generate data, build a sketch, evaluate against both
// baselines and the truth, exercise SQL and template paths, and round-trip
// serialization. This is the cross-module integration test; the IMDb
// equivalent lives in deepsketch_test.go.
func TestIntegrationTPCHPipeline(t *testing.T) {
	d := deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: 2, Orders: 1200})
	if got := len(d.TableNames()); got != 6 {
		t.Fatalf("tpch tables = %d", got)
	}

	sketch, err := deepsketch.Build(d, deepsketch.Config{
		Name: "tpch-int", SampleSize: 64, TrainQueries: 400, MaxJoins: 3, MaxPreds: 2, Seed: 6,
		Model: deepsketch.ModelConfig{HiddenUnits: 16, Epochs: 6, BatchSize: 64, Seed: 6},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// SQL estimation with a dictionary literal.
	est, err := sketch.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM customer c, orders o WHERE o.cust_id=c.id AND c.mktsegment='BUILDING'")
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality < 1 || math.IsNaN(est.Cardinality) {
		t.Fatalf("estimate = %v", est.Cardinality)
	}

	// Template over a numeric column with buckets.
	res, err := sketch.EstimateTemplateSQL(context.Background(),
		"SELECT COUNT(*) FROM orders o, lineitem l WHERE l.order_id=o.id AND l.shipdate=?",
		deepsketch.GroupBuckets, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("template instances = %d", len(res))
	}

	// Comparison harness over a held-out workload.
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{Seed: 31, Count: 30, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := deepsketch.HyperEstimator(d, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := deepsketch.Compare(context.Background(), labeled, []deepsketch.Estimator{
		sketch, hyper, deepsketch.PostgresEstimator(d),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Summary.Count != len(labeled) || r.Summary.Median < 1 {
			t.Errorf("row %s malformed: %+v", r.Name, r.Summary)
		}
	}

	// Serialization round trip on the TPC-H schema.
	var buf bytes.Buffer
	if err := sketch.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := deepsketch.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sketch.Cardinality(labeled[0].Query)
	b, _ := loaded.Cardinality(labeled[0].Query)
	if a != b {
		t.Errorf("estimates differ after round trip: %v vs %v", a, b)
	}
}

// TestIntegrationSketchBytesDeterministic: two identically-configured
// builds on identical data serialize to identical bytes — the whole
// pipeline is deterministic end to end.
func TestIntegrationSketchBytesDeterministic(t *testing.T) {
	build := func() []byte {
		d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 4, Titles: 500, Keywords: 40, Companies: 20, Persons: 80})
		s, err := deepsketch.Build(d, deepsketch.Config{
			Name: "det", SampleSize: 32, TrainQueries: 100, MaxJoins: 2, MaxPreds: 2, Seed: 8,
			Model: deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 2, BatchSize: 32, Seed: 8},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Zero the timing-dependent fields: stage durations and epoch wall
		// times legitimately differ between runs.
		s.StageMillis = nil
		for i := range s.Epochs {
			s.Epochs[i].Duration = 0
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := build()
	b := build()
	if !bytes.Equal(a, b) {
		t.Error("identical builds produced different sketch bytes")
	}
}

// TestIntegrationCrossSchemaSketchRejectsForeignQueries: a sketch built on
// one schema must cleanly reject queries from another.
func TestIntegrationCrossSchemaSketchRejectsForeignQueries(t *testing.T) {
	imdb := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 4, Titles: 400, Keywords: 30, Companies: 15, Persons: 60})
	tpch := deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: 4, Orders: 300})
	s, err := deepsketch.Build(imdb, deepsketch.Config{
		SampleSize: 16, TrainQueries: 60, MaxJoins: 1, MaxPreds: 1, Seed: 1,
		Model: deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 1, BatchSize: 16, Seed: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := deepsketch.ParseSQL(tpch, "SELECT COUNT(*) FROM lineitem l WHERE l.quantity>10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cardinality(q); err == nil {
		t.Error("imdb sketch should reject tpch query")
	}
	if _, err := s.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM lineitem l WHERE l.quantity>10"); err == nil {
		t.Error("imdb sketch should fail to parse tpch SQL")
	}
}
