// TPC-H sketch: the demo's second dataset. Builds a Deep Sketch over the
// synthetic TPC-H-like schema and compares it against the traditional
// estimators on a held-out uniform workload and on hand-written queries
// with correlated date predicates (shipdate is generated to follow
// orderdate, which independence-based estimation cannot exploit).
//
//	go run ./examples/tpch_sketch
package main

import (
	"context"
	"fmt"
	"log"

	"deepsketch"
)

func main() {
	fmt.Println("generating synthetic TPC-H...")
	d := deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: 3, Orders: 6000})
	fmt.Printf("  %d tables, %d total rows\n\n", len(d.TableNames()), d.TotalRows())

	fmt.Println("building sketch...")
	sketch, err := deepsketch.Build(d, deepsketch.Config{
		Name:         "tpch",
		SampleSize:   256,
		TrainQueries: 3000,
		Seed:         11,
		Model:        deepsketch.ModelConfig{HiddenUnits: 32, Epochs: 15, Seed: 11},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Hand-written queries, including the correlated orderdate/shipdate
	// combination.
	queries := []string{
		"SELECT COUNT(*) FROM lineitem l WHERE l.quantity>40",
		"SELECT COUNT(*) FROM orders o, lineitem l WHERE l.order_id=o.id AND o.orderdate<400 AND l.shipdate>1300",
		"SELECT COUNT(*) FROM orders o, lineitem l WHERE l.order_id=o.id AND o.orderdate>2000 AND l.shipdate>2100",
		"SELECT COUNT(*) FROM customer c, orders o WHERE o.cust_id=c.id AND c.mktsegment='AUTOMOBILE'",
		"SELECT COUNT(*) FROM part p, lineitem l WHERE l.part_id=p.id AND p.brand=1 AND l.discount>8",
	}
	hyper, err := deepsketch.HyperEstimator(d, 256, 11)
	if err != nil {
		log.Fatal(err)
	}
	pg := deepsketch.PostgresEstimator(d)
	ctx := context.Background()

	fmt.Printf("%-10s %-10s %-10s %-10s  query\n", "sketch", "hyper", "postgres", "true")
	for _, sql := range queries {
		q, err := deepsketch.ParseSQL(d, sql)
		if err != nil {
			log.Fatal(err)
		}
		est, err := sketch.Estimate(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		he, err := hyper.Estimate(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		pe, err := pg.Estimate(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f %-10.1f %-10.1f %-10d  %s\n", est.Cardinality, he.Cardinality, pe.Cardinality, truth, sql)
	}

	// Held-out uniform workload comparison (Table-1-style report).
	fmt.Println("\nheld-out uniform workload (150 queries):")
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
		Seed: 99, Count: 150, MaxJoins: 3, MaxPreds: 3, Dedup: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 0)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := deepsketch.Compare(ctx, labeled, []deepsketch.Estimator{
		sketch, hyper, pg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(deepsketch.FormatReport(rows))
}
