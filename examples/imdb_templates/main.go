// Template queries: the paper's flagship demo scenario. "A movie producer
// might be interested in the popularity of a certain keyword over time":
//
//	SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k
//	WHERE mk.movie_id=t.id AND mk.keyword_id=k.id
//	AND k.keyword='artificial-intelligence'
//	AND t.production_year=?
//
// The placeholder is instantiated with values drawn from the sketch's
// column sample, each instance is estimated separately, and the series is
// charted with overlays from the true cardinalities and the traditional
// estimators — a terminal rendition of the demo's Figure 2 chart.
//
//	go run ./examples/imdb_templates
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"deepsketch"
)

const templateSQL = "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k " +
	"WHERE mk.movie_id=t.id AND mk.keyword_id=k.id " +
	"AND k.keyword='artificial-intelligence' AND t.production_year=?"

func main() {
	fmt.Println("generating synthetic IMDb...")
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 8000})

	// Build a sketch over just the tables the template needs — the demo
	// lets users pick the table subset when defining a sketch.
	fmt.Println("building sketch over {title, movie_keyword, keyword}...")
	sketch, err := deepsketch.Build(d, deepsketch.Config{
		Name:         "keyword-trends",
		Tables:       []string{"title", "movie_keyword", "keyword"},
		SampleSize:   512,
		TrainQueries: 3000,
		Seed:         7,
		Model:        deepsketch.ModelConfig{HiddenUnits: 48, Epochs: 20, Seed: 7},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Group the years into buckets (the demo's "group the results by year"
	// feature, using equally sized buckets over the sampled range).
	results, err := sketch.EstimateTemplateSQL(context.Background(), templateSQL, deepsketch.GroupBuckets, 14)
	if err != nil {
		log.Fatal(err)
	}

	// Overlays: true cardinality plus the two traditional estimators.
	hyper, err := deepsketch.HyperEstimator(d, 512, 7)
	if err != nil {
		log.Fatal(err)
	}
	pg := deepsketch.PostgresEstimator(d)

	fmt.Println("\npopularity of 'artificial-intelligence' over production years")
	fmt.Printf("%-11s %8s %8s %8s %8s   chart: █ sketch · ∘ true\n",
		"years", "sketch", "true", "hyper", "postgres")
	maxVal := 1.0
	type row struct {
		label       string
		est, hy, pg float64
		truth       int64
	}
	rows := make([]row, 0, len(results))
	for _, r := range results {
		truth, err := deepsketch.TrueCardinality(d, r.Query)
		if err != nil {
			log.Fatal(err)
		}
		he, err := hyper.Estimate(context.Background(), r.Query)
		if err != nil {
			log.Fatal(err)
		}
		pe, err := pg.Estimate(context.Background(), r.Query)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{label: r.Label, est: r.Estimate, truth: truth, hy: he.Cardinality, pg: pe.Cardinality})
		if r.Estimate > maxVal {
			maxVal = r.Estimate
		}
		if float64(truth) > maxVal {
			maxVal = float64(truth)
		}
	}
	for _, r := range rows {
		const width = 34
		bar := int(r.est / maxVal * width)
		mark := int(float64(r.truth) / maxVal * width)
		line := []rune(strings.Repeat("█", bar) + strings.Repeat(" ", width-bar+2))
		if mark < len(line) {
			line[mark] = '∘'
		}
		fmt.Printf("%-11s %8.1f %8d %8.1f %8.1f   %s\n", r.label, r.est, r.truth, r.hy, r.pg, string(line))
	}

	// The point of the exercise: the sketch tracks the era-shaped trend the
	// independence-assuming estimator cannot see.
	var sketchQ, pgQ float64
	for _, r := range rows {
		sketchQ += deepsketch.QError(r.est, float64(r.truth))
		pgQ += deepsketch.QError(r.pg, float64(r.truth))
	}
	n := float64(len(rows))
	fmt.Printf("\nmean q-error over the series: Deep Sketch %.2f, PostgreSQL %.2f\n", sketchQ/n, pgQ/n)
}
