// Optimizer integration: the paper's motivation made concrete. "Estimates
// of intermediate query result sizes are the core ingredient to cost-based
// query optimizers. [...] The estimates produced by Deep Sketches can
// directly be leveraged by existing, sophisticated join enumeration
// algorithms and cost models."
//
// This example feeds a Deep Sketch's estimates (and the baselines') into a
// System-R-style dynamic-programming join enumerator with the C_out cost
// model, then re-costs every chosen plan under the true cardinalities —
// showing how estimation quality turns into plan quality.
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"deepsketch"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/optimizer"
	"deepsketch/internal/workload"
)

func main() {
	fmt.Println("generating synthetic IMDb...")
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 8000})

	fmt.Println("building sketch...")
	sketch, err := deepsketch.Build(d, deepsketch.Config{
		Name:         "optimizer-demo",
		SampleSize:   512,
		TrainQueries: 4000,
		MaxJoins:     4,
		Seed:         21,
		Model:        deepsketch.ModelConfig{HiddenUnits: 48, Epochs: 20, Seed: 21},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	hyper, err := estimator.NewHyper(d, 512, 21)
	if err != nil {
		log.Fatal(err)
	}
	pg := estimator.NewPostgres(d, estimator.PostgresOptions{})
	truth := func(q db.Query) (float64, error) {
		c, err := d.Count(q)
		return float64(c), err
	}

	// Show one query's plans in detail.
	qs, err := workload.JOBLight(d, 7)
	if err != nil {
		log.Fatal(err)
	}
	var demo db.Query
	for _, q := range qs {
		if len(q.Tables) >= 4 {
			demo = q
			break
		}
	}
	fmt.Printf("\nquery: %s\n\n", demo.SQL(d))
	for _, sys := range []struct {
		name string
		est  optimizer.CardinalityEstimator
	}{
		{"true cardinalities", truth},
		{"Deep Sketch", sketch.Cardinality},
		{"HyPer", hyper.Cardinality},
		{"PostgreSQL", pg.Cardinality},
	} {
		o, err := optimizer.New(demo, sys.est)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := o.BestPlan()
		if err != nil {
			log.Fatal(err)
		}
		trueCost, err := o.TrueCost(plan, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s plan %-40s true C_out %12.0f\n", sys.name, plan.String(), trueCost)
	}

	// Aggregate plan quality over the multi-join JOB-light queries.
	fmt.Println("\nplan quality over JOB-light (true cost of chosen plan / optimal):")
	names := []string{"Deep Sketch", "HyPer", "PostgreSQL"}
	ests := []optimizer.CardinalityEstimator{sketch.Cardinality, hyper.Cardinality, pg.Cardinality}
	ratios := make([][]float64, len(ests))
	for i, est := range ests {
		for _, q := range qs {
			if len(q.Tables) < 3 {
				continue
			}
			ratio, _, _, err := optimizer.PlanQuality(q, est, truth)
			if err != nil {
				log.Fatal(err)
			}
			ratios[i] = append(ratios[i], ratio)
		}
	}
	fmt.Print(optimizer.FormatComparison(names, ratios))
	fmt.Println("\na ratio of 1.00 means the estimator led the optimizer to the optimal join order.")
}
