// Quickstart: build a Deep Sketch over the synthetic IMDb dataset, estimate
// SQL queries through the unified Estimator interface, stand up a serving
// stack (cache + coalescer + clamp + PostgreSQL fallback), round-trip the
// sketch through its serialized form, and refresh it in place — warm-start
// fine-tune on a drift-delta workload, then atomically swap the new version
// into the live registry.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"deepsketch"
)

func main() {
	ctx := context.Background()

	// 1. Generate the dataset (deterministic in the seed). Real deployments
	// would point the builder at their own tables instead.
	fmt.Println("generating synthetic IMDb...")
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 5000})
	fmt.Printf("  %d tables, %d total rows\n\n", len(d.TableNames()), d.TotalRows())

	// 2. Build the sketch: generate + execute training queries, train MSCN.
	// Small settings so the example runs in seconds; see cmd/experiments for
	// paper-scale runs.
	fmt.Println("building sketch (2000 training queries, 15 epochs)...")
	cfg := deepsketch.Config{
		Name:         "quickstart",
		SampleSize:   256,
		TrainQueries: 2000,
		Seed:         42,
		Model: deepsketch.ModelConfig{
			HiddenUnits: 32,
			Epochs:      15,
			Seed:        42,
		},
	}
	sketch, err := deepsketch.Build(d, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	last := sketch.Epochs[len(sketch.Epochs)-1]
	fmt.Printf("  trained: validation mean q-error %.2f, median %.2f\n\n", last.ValMeanQ, last.ValMedQ)

	// 3. Ask the sketch for estimates. A sketch implements the Estimator
	// interface — context-aware, with an Estimate result carrying the
	// cardinality, the answering backend and the latency — and needs no
	// database access: it evaluates predicates on its embedded samples and
	// runs one MSCN forward pass.
	queries := []string{
		"SELECT COUNT(*) FROM title t WHERE t.production_year>2010",
		"SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000",
		"SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id=t.id AND ci.role_id=1 AND t.kind_id=1",
		"SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k WHERE mk.movie_id=t.id AND mk.keyword_id=k.id AND k.keyword='love'",
	}
	fmt.Printf("%-11s %12s %8s %10s  query\n", "estimate", "true", "q-error", "latency")
	for _, sql := range queries {
		est, err := sketch.EstimateSQL(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		q, err := deepsketch.ParseSQL(d, sql)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11.1f %12d %8.2f %10v  %s\n",
			est.Cardinality, truth, deepsketch.QError(est.Cardinality, float64(truth)), est.Latency, sql)
	}

	// 4. Production-shaped serving: stack the middleware onto the sketch.
	// The coalescer merges concurrent requests into batched forward passes,
	// Clamp bounds estimates into [1, |DB|], the PostgreSQL fallback answers
	// anything the sketch cannot, and the LRU cache shortcuts repeats.
	co := deepsketch.NewCoalescer(sketch, deepsketch.CoalesceOptions{})
	defer co.Close()
	serving := deepsketch.WithCache(
		deepsketch.Fallback(
			deepsketch.Clamp(co, deepsketch.MaxCardinality(d)),
			deepsketch.PostgresEstimator(d)),
		1024)
	q, err := deepsketch.ParseSQL(d, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	first, err := serving.Estimate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	again, err := serving.Estimate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	hits, misses := serving.Stats()
	fmt.Printf("\nserving stack: first %.1f (%v, source %s), repeat %.1f (cache hit: %v, %v); %d hits / %d misses\n",
		first.Cardinality, first.Latency, first.Source,
		again.Cardinality, again.CacheHit, again.Latency, hits, misses)

	// 5. Serialize: a sketch is a self-contained few-hundred-KiB artifact.
	var buf bytes.Buffer
	if err := sketch.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := deepsketch.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	est, err := loaded.EstimateSQL(ctx, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fb, err := sketch.Footprint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized sketch: %.2f MiB (weights %.2f MiB, samples %.2f MiB)\n",
		float64(fb.Total)/(1<<20), float64(fb.Weights)/(1<<20), float64(fb.Samples)/(1<<20))
	fmt.Printf("loaded sketch reproduces estimate: %.1f\n", est.Cardinality)

	// 6. Refreshing a live sketch. A long-lived deployment serves sketches
	// from a versioned registry; when the data drifts, Refresh fine-tunes
	// the live model on a freshly labeled delta workload — resuming the
	// Adam optimizer state persisted in the sketch file, so a couple of
	// epochs suffice where a rebuild needs a full run — and swaps the new
	// version in atomically. Traffic never stops: in-flight requests finish
	// on the old version, later ones see the new one, and caches watching
	// the registry generation invalidate themselves.
	reg := deepsketch.NewSketchRegistry()
	if _, err := reg.Publish("quickstart", sketch); err != nil {
		log.Fatal(err)
	}
	live := deepsketch.WithCache(
		deepsketch.Clamp(reg.Router(), deepsketch.MaxCardinality(d)),
		1024).WatchGeneration(reg.Generation)
	if _, err := live.Estimate(ctx, q); err != nil {
		log.Fatal(err)
	}

	deltaQs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{Seed: 7, Count: 500, Dedup: true})
	if err != nil {
		log.Fatal(err)
	}
	delta, err := deepsketch.LabelWorkload(d, deltaQs, 0)
	if err != nil {
		log.Fatal(err)
	}
	ver, refreshed, err := reg.Refresh(ctx, deepsketch.RegistryRefreshOptions{
		Name: "quickstart", Workload: delta,
		Epochs: 3, StopAtValQ: last.ValMeanQ, // stop as soon as it is as good as the old sketch
	})
	if err != nil {
		log.Fatal(err)
	}
	tuned := refreshed.Epochs[len(refreshed.Epochs)-1]
	postSwap, err := live.Estimate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefreshed to version %d on %d delta queries (%d fine-tune epochs, val mean-q %.2f)\n",
		ver, len(delta), len(refreshed.Epochs)-len(sketch.Epochs), tuned.ValMeanQ)
	fmt.Printf("post-swap estimate (new version, cache invalidated): %.1f (cache hit: %v)\n",
		postSwap.Cardinality, postSwap.CacheHit)
}
