// Quickstart: build a Deep Sketch over the synthetic IMDb dataset, estimate
// a few SQL queries against it, compare with the true cardinalities, and
// round-trip the sketch through its serialized form.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"deepsketch"
)

func main() {
	// 1. Generate the dataset (deterministic in the seed). Real deployments
	// would point the builder at their own tables instead.
	fmt.Println("generating synthetic IMDb...")
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 5000})
	fmt.Printf("  %d tables, %d total rows\n\n", len(d.TableNames()), d.TotalRows())

	// 2. Build the sketch: generate + execute training queries, train MSCN.
	// Small settings so the example runs in seconds; see cmd/experiments for
	// paper-scale runs.
	fmt.Println("building sketch (2000 training queries, 15 epochs)...")
	cfg := deepsketch.Config{
		Name:         "quickstart",
		SampleSize:   256,
		TrainQueries: 2000,
		Seed:         42,
		Model: deepsketch.ModelConfig{
			HiddenUnits: 32,
			Epochs:      15,
			Seed:        42,
		},
	}
	sketch, err := deepsketch.Build(d, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	last := sketch.Epochs[len(sketch.Epochs)-1]
	fmt.Printf("  trained: validation mean q-error %.2f, median %.2f\n\n", last.ValMeanQ, last.ValMedQ)

	// 3. Ask the sketch for estimates. The sketch needs no database access:
	// it evaluates predicates on its embedded samples and runs one MSCN
	// forward pass.
	queries := []string{
		"SELECT COUNT(*) FROM title t WHERE t.production_year>2010",
		"SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000",
		"SELECT COUNT(*) FROM title t, cast_info ci WHERE ci.movie_id=t.id AND ci.role_id=1 AND t.kind_id=1",
		"SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k WHERE mk.movie_id=t.id AND mk.keyword_id=k.id AND k.keyword='love'",
	}
	fmt.Printf("%-11s %12s %8s  query\n", "estimate", "true", "q-error")
	for _, sql := range queries {
		est, err := sketch.EstimateSQL(sql)
		if err != nil {
			log.Fatal(err)
		}
		q, err := deepsketch.ParseSQL(d, sql)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11.1f %12d %8.2f  %s\n", est, truth, deepsketch.QError(est, float64(truth)), sql)
	}

	// 4. Serialize: a sketch is a self-contained few-hundred-KiB artifact.
	var buf bytes.Buffer
	if err := sketch.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := deepsketch.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	est, err := loaded.EstimateSQL(queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fb, err := sketch.Footprint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized sketch: %.2f MiB (weights %.2f MiB, samples %.2f MiB)\n",
		float64(fb.Total)/(1<<20), float64(fb.Weights)/(1<<20), float64(fb.Samples)/(1<<20))
	fmt.Printf("loaded sketch reproduces estimate: %.1f\n", est)
}
