// 0-tuple situations: the paper's §2 robustness claim. "One advantage of
// our approach over pure sampling-based cardinality estimators is that it
// addresses 0-tuple situations, which is when no sampled tuples qualify. In
// such situations, sampling-based approaches usually fall back to an
// 'educated' guess — causing large estimation errors."
//
// This example mines queries whose predicates zero out at least one table's
// sample bitmap (but whose true result is non-empty) and compares the Deep
// Sketch against the sampling estimator that has to guess.
//
//	go run ./examples/zero_tuple
package main

import (
	"context"
	"fmt"
	"log"

	"deepsketch"
	"deepsketch/internal/estimator"
	"deepsketch/internal/metrics"
	"deepsketch/internal/workload"
)

func main() {
	fmt.Println("generating synthetic IMDb...")
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 5, Titles: 8000})

	// A deliberately small sample (128 tuples/table) makes 0-tuple
	// situations common, which is the regime this experiment probes.
	const sampleSize = 128
	fmt.Printf("building sketch with tiny samples (%d tuples/table)...\n", sampleSize)
	sketch, err := deepsketch.Build(d, deepsketch.Config{
		Name:         "zero-tuple",
		SampleSize:   sampleSize,
		TrainQueries: 4000,
		Seed:         13,
		Model:        deepsketch.ModelConfig{HiddenUnits: 48, Epochs: 20, Seed: 13},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Give the sampling estimator the sketch's own samples so both see the
	// exact same 0-tuple situations.
	hyper, err := estimator.NewHyperWithSamples(d, sketch.Samples)
	if err != nil {
		log.Fatal(err)
	}

	// Mine held-out queries that (a) hit a 0-tuple situation and (b) have a
	// non-empty true result.
	gen, err := workload.NewGenerator(d, workload.GenConfig{
		Seed: 321, Count: 4000, MaxJoins: 2, MaxPreds: 3, Dedup: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Collect all 0-tuple situations: the sample carries no signal, so the
	// estimators face true results that range from empty to hundreds of
	// rows. The sampling fallback guesses the same value for all of them.
	var zeroTuple []deepsketch.Query
	for _, q := range gen.Generate() {
		zt, err := hyper.ZeroTuple(q)
		if err != nil {
			log.Fatal(err)
		}
		if zt {
			zeroTuple = append(zeroTuple, q)
		}
		if len(zeroTuple) >= 150 {
			break
		}
	}
	fmt.Printf("mined %d 0-tuple queries\n\n", len(zeroTuple))
	if len(zeroTuple) == 0 {
		fmt.Println("no 0-tuple queries at this scale; increase dataset size")
		return
	}

	labeled, err := deepsketch.LabelWorkload(d, zeroTuple, 0)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := deepsketch.Compare(context.Background(), labeled, []deepsketch.Estimator{
		sketch,
		deepsketch.EstimatorFunc("HyPer (sampling)", hyper.Cardinality),
		deepsketch.PostgresEstimator(d),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("q-errors on 0-tuple queries (sampling must fall back to its educated guess):")
	fmt.Print(deepsketch.FormatReport(rows))

	// Show a few concrete cases.
	fmt.Println("\nexamples:")
	for i, lq := range labeled {
		if i >= 3 {
			break
		}
		se, err := sketch.Cardinality(lq.Query)
		if err != nil {
			log.Fatal(err)
		}
		he, err := hyper.Cardinality(lq.Query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  true %6d | sketch %9.1f (q %6.1f) | sampling %9.1f (q %6.1f)\n      %s\n",
			lq.Card, se, metrics.QError(se, float64(lq.Card)),
			he, metrics.QError(he, float64(lq.Card)), lq.Query.SQL(d))
	}
}
