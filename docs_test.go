package deepsketch

// Documentation gates, run by the CI docs job:
//
//   - TestDocsLinks: every relative markdown link in README.md and docs/
//     resolves to an existing file.
//   - TestPackageDocs: every package in the module (root, internal/*,
//     cmd/*) carries a package-level doc comment.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) links, excluding images' leading !.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	docEntries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("docs/ directory: %v", err)
	}
	for _, ent := range docEntries {
		if strings.HasSuffix(ent.Name(), ".md") {
			files = append(files, filepath.Join("docs", ent.Name()))
		}
	}
	if len(files) < 3 {
		t.Fatalf("expected README.md plus at least two docs/*.md, found %v", files)
	}
	for _, file := range files {
		blob, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; the offline check covers repo-relative links
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // intra-document anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}

func TestPackageDocs(t *testing.T) {
	var pkgDirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		var pkgName string
		for _, ent := range ents {
			if !strings.HasSuffix(ent.Name(), ".go") || strings.HasSuffix(ent.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s/%s: %v", dir, ent.Name(), err)
			}
			pkgName = f.Name.Name
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if pkgName != "" && !documented {
			t.Errorf("package %s (in %s) has no package-level doc comment", pkgName, dir)
		}
	}
}
