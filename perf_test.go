package deepsketch_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"deepsketch"
	"deepsketch/internal/mscn"
	"deepsketch/internal/wal"
)

// TestPerfTrajectory emits the perf-trajectory artifact: one JSON file of
// headline numbers (estimate latency, training epoch time, WAL append
// throughput) that CI uploads from every run, so performance history is a
// downloadable series instead of something to dig out of benchmark logs.
// Gated by DEEPSKETCH_BENCH_JSON (the output path, e.g.
// BENCH_deepsketch.json); without it the test skips. The numbers are
// measured wall-clock on whatever machine runs the suite — they are a
// trajectory, not a gate: comparisons are only meaningful between runs on
// the same runner class.
func TestPerfTrajectory(t *testing.T) {
	out := os.Getenv("DEEPSKETCH_BENCH_JSON")
	if out == "" {
		t.Skip("set DEEPSKETCH_BENCH_JSON=<path> to emit the perf-trajectory artifact")
	}
	f := fixtureB(t)

	// Estimate latency: single ad-hoc estimates cycling JOB-light, so
	// caching cannot flatter the number (mirrors BenchmarkEstimateLatency).
	// Measured once per inference engine precision, on a clone so the shared
	// fixture stays f64.
	const estimates = 2000
	measure := func(eng deepsketch.EnginePrecision) float64 {
		sk := f.sketch.Clone()
		sk.SetEnginePrecision(eng)
		// Warm the clone (lazy engine state, converted snapshots, caches)
		// before timing, so the first engine measured pays no cold-start
		// penalty the second one skips.
		for i := 0; i < 200; i++ {
			if _, err := sk.Cardinality(f.joblight[i%len(f.joblight)].Query); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		for i := 0; i < estimates; i++ {
			lq := f.joblight[i%len(f.joblight)]
			if _, err := sk.Cardinality(lq.Query); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Microseconds()) / estimates
	}
	estimateUS := measure(deepsketch.EngineF64)
	estimateF32US := measure(deepsketch.EngineF32)

	// Epoch time: one serial epoch of packed data-parallel MSCN training on
	// the fixture's prepared examples (mirrors BenchmarkTrainEpoch p=1).
	enc := f.td.Encoder
	mcfg := f.td.Cfg.Model
	mcfg.Epochs = 1
	m := mscn.New(mcfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	start := time.Now()
	if _, err := m.TrainWithOptions(f.td.Examples, enc.Norm, nil, mscn.TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	epochMS := float64(time.Since(start).Milliseconds())

	// WAL append throughput: observation records with distinct signatures
	// at the default fsync batching (mirrors internal/wal BenchmarkAppend).
	l, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const appends = 5000
	rec := wal.Record{
		Kind: wal.KindActual, Name: "perf", Version: 1,
		SQL: "SELECT COUNT(*) FROM title t WHERE t.production_year>2000", Estimate: 120, Actual: 100,
	}
	start = time.Now()
	for i := 0; i < appends; i++ {
		rec.Signature = fmt.Sprintf("sig-%d", i)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	walPerSec := appends / time.Since(start).Seconds()

	artifact := map[string]any{
		"schema":     "deepsketch-perf-v1",
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"metrics": map[string]float64{
			"estimate_latency_us":     estimateUS,
			"estimate_latency_f32_us": estimateF32US,
			"train_epoch_ms":          epochMS,
			"wal_appends_per_sec":     walPerSec,
			"train_examples":          float64(len(f.td.Examples)),
			"estimate_queries":        float64(len(f.joblight)),
			"wal_appends_measured":    appends,
			"estimates_measured":      estimates,
		},
	}
	blob, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("perf trajectory: estimate %.1fµs (f32 %.1fµs), epoch %.0fms, wal %.0f appends/s → %s",
		estimateUS, estimateF32US, epochMS, walPerSec, out)
}
