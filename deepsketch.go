// Package deepsketch is the public API of the Deep Sketches reproduction
// (Kipf et al., "Estimating Cardinalities with Deep Sketches", SIGMOD 2019).
//
// A Deep Sketch is a compact model of a database — a trained multi-set
// convolutional network (MSCN) plus materialized base-table samples — that
// estimates COUNT(*) result sizes of select-project-join SQL queries in
// milliseconds, without touching the database.
//
// # The Estimator interface
//
// Every estimation backend implements the one Estimator interface —
// context-aware, batched, returning an Estimate result (cardinality, source
// name, latency) rather than a bare number:
//
//	Estimate(ctx, q)       (Estimate, error)
//	EstimateBatch(ctx, qs) ([]Estimate, error)
//	Name()                 string
//
// Sketches, the multi-sketch Router, the traditional estimators
// (PostgresEstimator, HyperEstimator), the exact TruthEstimator, and every
// serving wrapper all satisfy it, so they compose and interchange freely.
//
// Typical usage:
//
//	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1})
//	sketch, err := deepsketch.Build(d, deepsketch.Config{
//	    TrainQueries: 10000,
//	    SampleSize:   1000,
//	}, nil)
//	est, err := sketch.EstimateSQL(ctx,
//	    "SELECT COUNT(*) FROM title t, movie_keyword mk " +
//	    "WHERE mk.movie_id=t.id AND t.production_year>2010")
//	fmt.Println(est.Cardinality, est.Latency)
//
// # Serving
//
// For production-shaped serving, stack the middleware from the serve layer
// onto any Estimator: WithCache adds an LRU estimate cache keyed on the
// canonical query fingerprint, NewCoalescer merges concurrent single-query
// requests into one batched MSCN forward pass, Clamp bounds estimates into
// [1, |DB|], and Fallback chains backends so an uncovered query falls
// through (e.g. Router → PostgreSQL) instead of erroring:
//
//	serving := deepsketch.WithCache(
//	    deepsketch.Fallback(
//	        deepsketch.Clamp(deepsketch.NewCoalescer(sketch, deepsketch.CoalesceOptions{}), maxCard),
//	        deepsketch.PostgresEstimator(d)),
//	    4096)
//	est, err := serving.Estimate(ctx, q)
//
// Sketches serialize to a few MiB (Save/Load) and can be queried standalone.
// The package also exposes the JOB-light evaluation workload and q-error
// reporting utilities (Compare, FormatReport).
package deepsketch

import (
	"context"
	"fmt"
	"io"
	"os"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/drift"
	"deepsketch/internal/estimator"
	"deepsketch/internal/lifecycle"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/nn"
	"deepsketch/internal/router"
	"deepsketch/internal/serve"
	"deepsketch/internal/sqlparse"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/wal"
	"deepsketch/internal/workload"
)

// Core re-exports: the database substrate and query model.
type (
	// DB is an in-memory column-store database.
	DB = db.DB
	// Query is a parsed COUNT(*) select-project-join query.
	Query = db.Query
	// TableRef, JoinPred and Predicate are Query components.
	TableRef = db.TableRef
	JoinPred = db.JoinPred
	// Predicate is a base-table selection alias.col <op> literal.
	Predicate = db.Predicate
	// Op is a predicate operator (OpEq, OpLt, OpGt).
	Op = db.Op
)

// Operator constants.
const (
	OpEq = db.OpEq
	OpLt = db.OpLt
	OpGt = db.OpGt
)

// Sketch construction and use.
type (
	// Config configures sketch creation (step 1 of the paper's Figure 1a).
	Config = core.Config
	// ModelConfig holds the MSCN hyperparameters.
	ModelConfig = mscn.Config
	// Sketch is a trained Deep Sketch.
	Sketch = core.Sketch
	// TemplateResult is one instantiated template estimate.
	TemplateResult = core.TemplateResult
	// Monitor records creation progress (stages, epochs).
	Monitor = trainmon.Monitor
	// TrainEvent is one monitoring record (stage start/end, progress,
	// epoch metrics) delivered to Monitor sinks.
	TrainEvent = trainmon.Event
	// TrainSnapshot summarizes creation progress for polling clients.
	TrainSnapshot = trainmon.Snapshot
	// FootprintBreakdown reports serialized sketch size per component.
	FootprintBreakdown = core.FootprintBreakdown
)

// Monitoring event kinds and pipeline stages (see TrainEvent).
const (
	EventStageStart = trainmon.KindStageStart
	EventStageEnd   = trainmon.KindStageEnd
	EventProgress   = trainmon.KindProgress
	EventEpoch      = trainmon.KindEpoch

	StageDefine    = trainmon.StageDefine
	StageGenerate  = trainmon.StageGenerate
	StageExecute   = trainmon.StageExecute
	StageFeaturize = trainmon.StageFeaturize
	StageTrain     = trainmon.StageTrain
)

// Workload types.
type (
	// LabeledQuery pairs a query with its true cardinality.
	LabeledQuery = workload.LabeledQuery
	// Template is a query template with a placeholder column.
	Template = workload.Template
	// Grouping selects template instantiation (GroupDistinct/GroupBuckets).
	Grouping = workload.Grouping
	// GenConfig configures the uniform training-query generator.
	GenConfig = workload.GenConfig
)

// Template grouping modes.
const (
	GroupDistinct = workload.GroupDistinct
	GroupBuckets  = workload.GroupBuckets
)

// LossKind selects the MSCN training objective.
type LossKind = nn.LossKind

// Training objectives: the paper's mean q-error, and L1 in log space.
const (
	LossQError = nn.LossQError
	LossL1Log  = nn.LossL1Log
)

// EnginePrecision selects the numeric format of a sketch's MSCN inference
// engine (Sketch.SetEnginePrecision). Training always stays float64; the
// reduced-precision paths are inference-only, convert weight snapshots once
// per weight version, and are gated on bounded q-error deviation vs the
// f64 reference.
type EnginePrecision = mscn.Precision

// Inference engine precisions.
const (
	// EngineF64 is the full-precision reference path (default).
	EngineF64 = mscn.F64
	// EngineF32 halves weight memory traffic; per-query q-error deviation
	// vs f64 is bounded <1% by the equivalence gate.
	EngineF32 = mscn.F32
	// EngineInt8 is the experimental per-layer-scaled quantized path.
	EngineInt8 = mscn.Int8
)

// ParseEnginePrecision parses an -engine flag spelling ("f64", "f32",
// "int8"); the empty string means f64.
func ParseEnginePrecision(s string) (EnginePrecision, error) { return mscn.ParsePrecision(s) }

// Dataset generator configs.
type (
	// IMDbConfig sizes the synthetic IMDb-like dataset.
	IMDbConfig = datagen.IMDbConfig
	// TPCHConfig sizes the synthetic TPC-H-like dataset.
	TPCHConfig = datagen.TPCHConfig
)

// Metrics.
type (
	// QErrorSummary holds Table-1-style statistics.
	QErrorSummary = metrics.Summary
	// ReportRow is one system's summary line.
	ReportRow = metrics.Row
)

// Router dispatches estimates across multiple registered sketches,
// preferring the most specific covering sketch (the system answer to the
// paper's open question of which schema parts to sketch). Sketches can be
// swapped and unregistered under live traffic (Swap, Unregister), and
// Generation exposes the mutation counter serving caches watch.
type Router = router.Router

// NewRouter returns an empty sketch router.
func NewRouter() *Router { return router.New() }

// Sketch lifecycle: versioned serving with warm-start refresh.
type (
	// SketchRegistry is a versioned sketch registry over a Router: Publish
	// installs versions atomically, Swap replaces live sketches under
	// traffic, Rollback reverts, Refresh warm-start retrains on a delta
	// workload and swaps the result in.
	SketchRegistry = lifecycle.Registry
	// SketchVersion describes one version of a registered sketch.
	SketchVersion = lifecycle.VersionInfo
	// RegistryRefreshOptions parameterizes SketchRegistry.Refresh.
	RegistryRefreshOptions = lifecycle.RefreshOptions
	// RefreshOptions tunes a standalone warm-start Refresh.
	RefreshOptions = core.RefreshOptions
	// OptimizerState is a training run's exported Adam state (moments +
	// step count); sketches persist it so refreshes resume optimization.
	OptimizerState = nn.OptState
)

// NewSketchRegistry returns an empty versioned sketch registry (with its
// own Router, reachable via the registry's Router method).
func NewSketchRegistry() *SketchRegistry { return lifecycle.New() }

// SketchCanary describes a registry's active canary rollout: the candidate
// version, the live version it is compared against, and its traffic
// fraction.
type SketchCanary = lifecycle.CanaryInfo

// CanarySplit reports whether a query signature belongs to the canary arm
// at the given traffic fraction — the deterministic hash split the Router
// and registries route by. Stable per signature, monotone in the fraction.
func CanarySplit(sig string, fraction float64) bool { return router.CanarySplit(sig, fraction) }

// Drift monitoring: the closed loop that turns live q-error degradation
// into automatic warm refreshes rolled out behind a canary.
type (
	// DriftMonitor samples live estimates, ground-truths them
	// asynchronously, and fires triggers on windowed q-error degradation or
	// staleness (see internal/drift).
	DriftMonitor = drift.Monitor
	// DriftConfig parameterizes a DriftMonitor (sampling rate, window,
	// thresholds, staleness clock, cooldown).
	DriftConfig = drift.Config
	// DriftReason describes why a drift trigger fired.
	DriftReason = drift.Reason
	// DriftStatus is a sketch's monitoring snapshot.
	DriftStatus = drift.Status
	// DriftController closes the loop over a SketchRegistry: trigger →
	// warm refresh → canary → comparative q-error gate → promote/abort.
	DriftController = drift.Controller
	// DriftControllerConfig parameterizes a DriftController (canary
	// fraction, promote gate, refresh budget, delta-workload source).
	DriftControllerConfig = drift.ControllerConfig
	// DriftEvent is one controller state transition.
	DriftEvent = drift.Event
	// DriftCycleStatus reports a sketch's controller cycle state.
	DriftCycleStatus = drift.CycleStatus
	// PinnedBenchmark is a frozen labeled workload the drift controller
	// evaluates every refresh candidate against before its canary starts —
	// the held-out judgment set an adaptive feedback source cannot steer.
	PinnedBenchmark = drift.PinnedBenchmark
	// PinnedResult is one pinned-benchmark rail judgment.
	PinnedResult = drift.PinnedResult
)

// DefaultPinnedMaxRegress is the default pinned-rail tolerance.
const DefaultPinnedMaxRegress = drift.DefaultPinnedMaxRegress

// NewDriftMonitor returns a drift monitor that obtains ground truth from
// truth — TruthEstimator(d) for exact counts, PostgresEstimator(d) for a
// cheap approximation, or EstimatorFunc over logged actuals. A nil truth
// runs the monitor without any in-process ground truth: every sampled
// estimate parks as pending until DriftMonitor.ResolveActual reports the
// observed actual (the logged-actuals serving mode).
func NewDriftMonitor(cfg DriftConfig, truth Estimator) *DriftMonitor {
	return drift.NewMonitor(cfg, truth)
}

// Logged-actuals feedback loop: the observation WAL that lets serving run
// without the exact executor, with ground truth POSTed by clients that ran
// the queries for real.
type (
	// ObservationLog is a segmented, CRC-checked, fsync-batched WAL of
	// observation records (see internal/wal): served estimates awaiting
	// ground truth and observed actuals. Replay rebuilds drift-monitor
	// state after a restart; RecentActuals supplies WAL-derived delta
	// workloads for warm refreshes.
	ObservationLog = wal.Log
	// WALRecord is one observation log entry.
	WALRecord = wal.Record
	// WALOptions parameterizes OpenObservationLog.
	WALOptions = wal.Options
	// WALStats is an ObservationLog snapshot.
	WALStats = wal.Stats
	// WALKind distinguishes observation records from actual records.
	WALKind = wal.Kind
	// ActualsAdmitter rate-limits and samples the logged-actuals ingest
	// path per client, bounding any one feedback source's influence on the
	// training distribution.
	ActualsAdmitter = wal.Admitter
	// AdmitConfig parameterizes an ActualsAdmitter.
	AdmitConfig = wal.AdmitConfig
	// AdmitDecision is an ActualsAdmitter verdict (admitted, sampled out,
	// or capped).
	AdmitDecision = wal.Decision
	// ClientAdmitStats is one ingest client's admission counters.
	ClientAdmitStats = wal.ClientStats
	// DriftJournal receives pending/resolved monitor transitions for
	// durable logging (DriftConfig.Journal).
	DriftJournal = drift.Journal
	// ActualsSource is the drift monitor's ground-truth seam; nil means
	// logged actuals only.
	ActualsSource = drift.ActualsSource
)

// WAL record kinds and admission decisions.
const (
	WALObservation = wal.KindObservation
	WALActual      = wal.KindActual

	AdmitAdmitted = wal.Admitted
	AdmitSampled  = wal.Sampled
	AdmitCapped   = wal.Capped
)

// OpenObservationLog opens (creating if needed) an observation WAL rooted
// at dir.
func OpenObservationLog(dir string, opts WALOptions) (*ObservationLog, error) {
	return wal.Open(dir, opts)
}

// NewActualsAdmitter returns an admission controller for the actuals
// ingest path.
func NewActualsAdmitter(cfg AdmitConfig) *ActualsAdmitter { return wal.NewAdmitter(cfg) }

// NewDriftMonitorSource is NewDriftMonitor with an explicit ActualsSource
// (EstimatorActualsSource adapts an Estimator; nil parks everything).
func NewDriftMonitorSource(cfg DriftConfig, src ActualsSource) *DriftMonitor {
	return drift.NewMonitorSource(cfg, src)
}

// EstimatorActualsSource adapts an Estimator into an ActualsSource that
// always answers.
func EstimatorActualsSource(est Estimator) ActualsSource { return drift.EstimatorSource(est) }

// NewDriftController wires a controller to the registry and monitor and
// installs itself as the monitor's trigger handler.
func NewDriftController(reg *SketchRegistry, mon *DriftMonitor, cfg DriftControllerConfig) *DriftController {
	return drift.NewController(reg, mon, cfg)
}

// ObserveEstimates returns middleware that reports every computed estimate
// flowing through it to the drift monitor. Stack it between the cache and
// the backend so cache hits are not re-counted.
func ObserveEstimates(e Estimator, m *DriftMonitor) Estimator { return drift.Observe(e, m) }

// NewPinnedBenchmark freezes a labeled workload as a pinned benchmark.
func NewPinnedBenchmark(labeled []LabeledQuery) *PinnedBenchmark {
	return drift.NewPinnedBenchmark(labeled)
}

// WritePinnedBenchmarkFile atomically persists a pinned benchmark's
// labeled workload to path in the workload CSV format.
func WritePinnedBenchmarkFile(path string, labeled []LabeledQuery) error {
	return drift.WritePinnedBenchmarkFile(path, labeled)
}

// LoadPinnedBenchmarkFile loads a pinned benchmark persisted by
// WritePinnedBenchmarkFile, validating its queries against d's schema.
func LoadPinnedBenchmarkFile(d *DB, path string) (*PinnedBenchmark, error) {
	return drift.LoadPinnedBenchmarkFile(d, path)
}

// Refresh warm-start retrains a sketch on a labeled drift-delta workload
// and returns the refreshed sketch; the input sketch keeps serving
// untouched. Training resumes the sketch's persisted Adam state (sketch
// format v2) so a delta workload reaches full-build quality in a fraction
// of the epochs; v1-era sketches refresh from warm weights with a cold
// optimizer.
func Refresh(ctx context.Context, s *Sketch, labeled []LabeledQuery, opts RefreshOptions, mon *Monitor) (*Sketch, error) {
	return core.Refresh(ctx, s, labeled, opts, mon)
}

// NewIMDb generates the synthetic IMDb-like database the demo's IMDb mode
// runs on ("a real-world dataset that contains many correlations"): skewed,
// correlated, deterministic in the seed.
func NewIMDb(cfg IMDbConfig) *DB { return datagen.IMDb(cfg) }

// NewTPCH generates the synthetic TPC-H-like database of the demo's TPC-H
// mode.
func NewTPCH(cfg TPCHConfig) *DB { return datagen.TPCH(cfg) }

// NewMonitor returns a fresh creation-progress monitor.
func NewMonitor() *Monitor { return trainmon.New() }

// DefaultModelConfig returns the default MSCN hyperparameters.
func DefaultModelConfig() ModelConfig { return mscn.DefaultConfig() }

// Build creates a Deep Sketch over the database: generates uniform training
// queries, executes them (in parallel) for true cardinalities and sample
// bitmaps, featurizes, and trains the MSCN. mon may be nil.
func Build(d *DB, cfg Config, mon *Monitor) (*Sketch, error) {
	return core.Build(d, cfg, mon)
}

// BuildWithWorkload creates a sketch from a pre-labeled workload (e.g. one
// written by WriteWorkloadFile), skipping query generation and execution.
func BuildWithWorkload(d *DB, cfg Config, labeled []LabeledQuery, mon *Monitor) (*Sketch, error) {
	return core.BuildWithWorkload(d, cfg, labeled, mon)
}

// WriteWorkloadFile writes a labeled workload in the original artifact's
// CSV format (tables#joins#predicates#cardinality).
func WriteWorkloadFile(path string, labeled []LabeledQuery) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteCSV(f, labeled); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadWorkloadFile reads a labeled workload in the artifact CSV format,
// validating it against the schema.
func ReadWorkloadFile(d *DB, path string) ([]LabeledQuery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadCSV(d, f)
}

// Load reads a serialized sketch.
func Load(r io.Reader) (*Sketch, error) { return core.Load(r) }

// LoadFile reads a serialized sketch from a file.
func LoadFile(path string) (*Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

// SaveFile writes a sketch to a file and fsyncs it before returning, so a
// caller's write-temp-then-rename sequence survives a crash.
//
//deepsketch:durable
func SaveFile(s *Sketch, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseSQL parses a SQL string of the supported dialect against a database
// (or a sketch's SchemaDB) and returns the query. Placeholder statements
// return an error here; use ParseTemplateSQL.
func ParseSQL(d *DB, sql string) (Query, error) {
	res, err := sqlparse.Parse(d, sql)
	if err != nil {
		return Query{}, err
	}
	if res.Placeholder != nil {
		return Query{}, fmt.Errorf("deepsketch: statement has a placeholder; use ParseTemplateSQL")
	}
	return res.Query, nil
}

// ParseTemplateSQL parses a SQL string containing a `?` placeholder into a
// Template.
func ParseTemplateSQL(d *DB, sql string) (Template, error) {
	res, err := sqlparse.Parse(d, sql)
	if err != nil {
		return Template{}, err
	}
	return res.Template()
}

// TrueCardinality executes the query exactly (the ground truth the demo
// obtains from HyPer).
func TrueCardinality(d *DB, q Query) (int64, error) { return d.Count(q) }

// JOBLight builds the 70-query JOB-light-style evaluation workload on an
// IMDb-schema database (Table 1's workload).
func JOBLight(d *DB, seed int64) ([]Query, error) { return workload.JOBLight(d, seed) }

// GenerateWorkload produces uniformly distributed queries (the training
// query distribution of the paper's step 2).
func GenerateWorkload(d *DB, cfg GenConfig) ([]Query, error) {
	g, err := workload.NewGenerator(d, cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// LabelWorkload executes queries in parallel to obtain true cardinalities.
func LabelWorkload(d *DB, qs []Query, workers int) ([]LabeledQuery, error) {
	return workload.Label(d, qs, workers, nil)
}

// YearTemplate builds the paper's flagship template: a keyword's popularity
// over production years.
func YearTemplate(d *DB, keyword string) (Template, error) {
	return workload.YearTemplate(d, keyword)
}

// Estimation interface: the one entry point every backend implements.
type (
	// Estimator is the unified estimation interface (see the package doc).
	Estimator = estimator.Estimator
	// Estimate is one estimation result: cardinality, source backend name,
	// latency, and whether it was served from a cache.
	Estimate = estimator.Estimate
)

// EstimatorFunc adapts a plain estimation function to the Estimator
// interface, for ad-hoc backends in comparison harnesses.
func EstimatorFunc(name string, fn func(Query) (float64, error)) Estimator {
	return estimator.Func{EstimatorName: name, Fn: fn}
}

// PostgresEstimator builds the PostgreSQL-style estimator (per-column MCVs,
// histograms, independence assumption).
func PostgresEstimator(d *DB) Estimator {
	return estimator.NewPostgres(d, estimator.PostgresOptions{})
}

// HyperEstimator builds the HyPer-style sampling estimator with the given
// sample size (educated-guess fallback in 0-tuple situations).
func HyperEstimator(d *DB, sampleSize int, seed int64) (Estimator, error) {
	return estimator.NewHyper(d, sampleSize, seed)
}

// TruthEstimator wraps exact query execution as an Estimator (the ground
// truth the demo obtains from HyPer).
func TruthEstimator(d *DB) Estimator { return &estimator.Truth{DB: d} }

// Serving layer: composable middleware over any Estimator.
type (
	// EstimateCache is an LRU estimate cache (see WithCache).
	EstimateCache = serve.Cache
	// Coalescer merges concurrent Estimate calls into batched forward
	// passes (see NewCoalescer).
	Coalescer = serve.Coalescer
	// CoalesceOptions tune the coalescer's batch size and wait bound.
	CoalesceOptions = serve.CoalesceOptions
)

// WithCache wraps an estimator with an LRU estimate cache keyed on the
// canonical query fingerprint (clause order does not matter).
func WithCache(e Estimator, capacity int) *EstimateCache { return serve.NewCache(e, capacity) }

// NewCoalescer starts a micro-batching coalescer over the backend: while
// one batch is in flight, concurrently arriving single-query requests are
// merged into the next batched forward pass. Call Close when done.
func NewCoalescer(e Estimator, opts CoalesceOptions) *Coalescer { return serve.NewCoalescer(e, opts) }

// Clamp bounds every cardinality into [1, max]; max <= 0 only enforces ≥ 1.
func Clamp(e Estimator, max float64) Estimator { return serve.Clamp(e, max) }

// Fallback chains backends: each query is answered by the first backend
// that succeeds (e.g. Router → PostgreSQL for uncovered queries).
func Fallback(backends ...Estimator) Estimator { return serve.Fallback(backends...) }

// MaxCardinality returns the product of all table sizes — the natural
// Clamp bound for a database.
func MaxCardinality(d *DB) float64 { return serve.MaxCardinality(d) }

// QError returns the q-error between an estimate and a true cardinality.
func QError(estimate, truth float64) float64 { return metrics.QError(estimate, truth) }

// Compare evaluates estimators on a labeled workload and returns
// Table-1-style summary rows (median/90th/95th/99th/max/mean q-error), in
// input order. Each estimator runs its batched path; ctx cancels mid-run.
func Compare(ctx context.Context, labeled []LabeledQuery, systems []Estimator) ([]ReportRow, error) {
	qs := make([]db.Query, len(labeled))
	for i, lq := range labeled {
		qs[i] = lq.Query
	}
	rows := make([]ReportRow, 0, len(systems))
	for _, sys := range systems {
		ests, err := sys.EstimateBatch(ctx, qs)
		if err != nil {
			return nil, fmt.Errorf("deepsketch: %s failed: %w", sys.Name(), err)
		}
		qerrs := make([]float64, len(labeled))
		for i, lq := range labeled {
			qerrs[i] = metrics.QError(ests[i].Cardinality, float64(lq.Card))
		}
		rows = append(rows, ReportRow{Name: sys.Name(), Summary: metrics.Summarize(qerrs)})
	}
	return rows, nil
}

// FormatReport renders comparison rows in the layout of the paper's Table 1.
func FormatReport(rows []ReportRow) string { return metrics.FormatTable(rows) }
